#include <sstream>

#include "panorama/analysis/analysis.h"
#include "panorama/analysis/driver.h"

namespace panorama {

std::string formatLoopAnalysis(const LoopAnalysis& la, const SummaryAnalyzer& analyzer) {
  std::ostringstream os;
  const char* var = la.loop ? la.loop->doVar.c_str() : "?";
  os << la.procName << ": DO " << var << " (line " << la.line << "): "
     << toString(la.classification);
  if (la.classification == LoopClass::Serial && !la.serialReason.empty())
    os << " — " << la.serialReason;
  os << '\n';
  for (const ArrayPrivatization& ap : la.arrays) {
    os << "    array " << ap.name << ": ";
    if (!ap.written)
      os << "read-only";
    else if (ap.privatizable)
      os << "privatizable" << (ap.needsCopyOut ? " (copy-out last value)" : "");
    else if (ap.candidate)
      os << "candidate, NOT privatizable (" << ap.reason << ")";
    else
      os << ap.reason;
    os << '\n';
  }
  for (const ScalarInfo& si : la.scalars) {
    if (si.reduction)
      os << "    scalar " << si.name << ": reduction (" << si.reductionOp << ")\n";
    else if (!si.privatizable)
      os << "    scalar " << si.name << ": exposed across iterations\n";
  }
  (void)analyzer;
  return os.str();
}

std::string formatCorpusStats(const CorpusAnalysisResult& result) {
  std::size_t parallel = 0, afterPriv = 0, serial = 0;
  for (const CorpusRoutineResult& r : result.loops) {
    switch (r.classification) {
      case LoopClass::Parallel: ++parallel; break;
      case LoopClass::ParallelAfterPrivatization: ++afterPriv; break;
      case LoopClass::Serial: ++serial; break;
    }
  }
  std::ostringstream os;
  os << "corpus: " << result.loops.size() << " loops analyzed on " << result.threadsUsed
     << " thread" << (result.threadsUsed == 1 ? "" : "s") << " — " << parallel << " parallel, "
     << afterPriv << " parallel after privatization, " << serial << " serial\n";
  os << "summary cost: " << result.summaryStats.blockSteps << " block steps, "
     << result.summaryStats.loopExpansions << " loop expansions, "
     << result.summaryStats.callMappings << " call mappings, peak list length "
     << result.summaryStats.peakListLength << ", " << result.summaryStats.garsCreated
     << " GARs created\n";
  os << formatQueryCacheStats(result.cacheStats) << '\n';
  os << "simplify memo: " << result.simplifyStats.hits << " hits / "
     << result.simplifyStats.misses << " misses ("
     << static_cast<int>(result.simplifyStats.hitRate() * 100.0) << "% hit rate), "
     << result.simplifyStats.entries << " entries, " << result.simplifyStats.evictions
     << " evictions\n";
  return os.str();
}

}  // namespace panorama
