// The report layer: per-loop text reports, decision-provenance rendering
// (--explain), and the corpus-wide stats block — the latter driven by the
// obs metrics registry so the counters exist exactly once and every
// renderer (this file, panorama_driver --stats, the --metrics JSON dump)
// reads the same source of truth.
#include <sstream>

#include "panorama/analysis/analysis.h"
#include "panorama/analysis/driver.h"
#include "panorama/obs/metrics.h"
#include "panorama/predicate/fm_incremental.h"

namespace panorama {

std::string formatLoopAnalysis(const LoopAnalysis& la) {
  std::ostringstream os;
  const char* var = la.loop ? la.loop->doVar.c_str() : "?";
  os << la.procName << ": DO " << var << " (line " << la.line << "): "
     << toString(la.classification);
  if (la.classification == LoopClass::Serial && !la.serialReason.empty())
    os << " — " << la.serialReason;
  os << '\n';
  for (const ArrayPrivatization& ap : la.arrays) {
    os << "    array " << ap.name << ": ";
    if (!ap.written)
      os << "read-only";
    else if (ap.privatizable)
      os << "privatizable" << (ap.needsCopyOut ? " (copy-out last value)" : "");
    else if (ap.candidate)
      os << "candidate, NOT privatizable (" << ap.reason << ")";
    else
      os << ap.reason;
    os << '\n';
  }
  for (const ScalarInfo& si : la.scalars) {
    if (si.reduction)
      os << "    scalar " << si.name << ": reduction (" << si.reductionOp << ")\n";
    else if (!si.privatizable)
      os << "    scalar " << si.name << ": exposed across iterations\n";
  }
  return os.str();
}

std::string formatProvenance(const LoopAnalysis& la) {
  std::ostringstream os;
  for (const obs::Evidence& e : la.provenance.evidence) {
    os << "    why [" << toString(e.kind) << "]";
    if (!e.subject.empty()) os << " " << e.subject;
    os << " -> " << toString(e.verdict);
    if (!e.detail.empty()) os << ": " << e.detail;
    os << '\n';
  }
  for (const obs::SymbolicNote& n : la.provenance.notes) {
    os << "    why (symbolic, best-effort) [" << n.source << "] during " << n.scope << ": "
       << n.detail << '\n';
  }
  return os.str();
}

std::string provenanceSummary(const LoopAnalysis& la) {
  std::ostringstream os;
  os << toString(la.classification);
  if (la.classification != LoopClass::Serial) {
    // Name the arrays whose privatization the verdict rests on.
    bool any = false;
    for (const ArrayPrivatization& ap : la.arrays) {
      if (!ap.privatizable) continue;
      os << (any ? "" : " [privatized:") << " " << ap.name;
      any = true;
    }
    if (any) os << "]";
    return os.str();
  }
  os << ":";
  bool decisive = false;
  for (const obs::Evidence& e : la.provenance.evidence) {
    switch (e.kind) {
      case obs::EvidenceKind::NotSummarized:
      case obs::EvidenceKind::UnanalyzableHeader:
        os << " " << toString(e.kind);
        decisive = true;
        break;
      case obs::EvidenceKind::FlowTest:
        if (e.verdict != Truth::True) {
          os << " flow-test unresolved on " << e.subject << ";";
          decisive = true;
        }
        break;
      case obs::EvidenceKind::CopyOutDemotion:
        os << " copy-out demoted " << e.subject << ";";
        decisive = true;
        break;
      case obs::EvidenceKind::DependenceTest:
        if (e.verdict != Truth::True) {
          os << " carried-" << e.subject << " unresolved;";
          decisive = true;
        }
        break;
      case obs::EvidenceKind::ScalarExposed:
        os << " scalar " << e.subject << " exposed;";
        decisive = true;
        break;
      default: break;
    }
  }
  if (!decisive) os << " " << la.serialReason;
  std::string out = os.str();
  if (out.ends_with(";")) out.pop_back();
  return out;
}

void publishCorpusMetrics(const CorpusAnalysisResult& result, obs::MetricsRegistry& registry) {
  std::size_t parallel = 0, afterPriv = 0, serial = 0, provenanceEvents = 0;
  for (const CorpusRoutineResult& r : result.loops) {
    switch (r.classification) {
      case LoopClass::Parallel: ++parallel; break;
      case LoopClass::ParallelAfterPrivatization: ++afterPriv; break;
      case LoopClass::Serial: ++serial; break;
    }
    provenanceEvents += r.provenanceEvidenceCount;
  }
  registry.counter("corpus.loops").set(result.loops.size());
  registry.counter("corpus.parallel").set(parallel);
  registry.counter("corpus.parallel_after_privatization").set(afterPriv);
  registry.counter("corpus.serial").set(serial);
  registry.counter("corpus.threads").set(result.threadsUsed);
  registry.counter("provenance.evidence").set(provenanceEvents);

  registry.counter("summary.block_steps").set(result.summaryStats.blockSteps);
  registry.counter("summary.loop_expansions").set(result.summaryStats.loopExpansions);
  registry.counter("summary.call_mappings").set(result.summaryStats.callMappings);
  registry.counter("summary.peak_list_length").set(result.summaryStats.peakListLength);
  registry.counter("summary.gars_created").set(result.summaryStats.garsCreated);

  registry.counter("query_cache.hits").set(result.cacheStats.hits);
  registry.counter("query_cache.misses").set(result.cacheStats.misses);
  registry.counter("query_cache.entries").set(result.cacheStats.entries);
  registry.counter("query_cache.evictions").set(result.cacheStats.evictions);
  registry.counter("query_cache.evicted_stale").set(result.cacheStats.evictedStale);
  registry.counter("query_cache.evicted_live").set(result.cacheStats.evictedLive);

  registry.counter("simplify_memo.hits").set(result.simplifyStats.hits);
  registry.counter("simplify_memo.misses").set(result.simplifyStats.misses);
  registry.counter("simplify_memo.entries").set(result.simplifyStats.entries);
  registry.counter("simplify_memo.evictions").set(result.simplifyStats.evictions);

  // Elimination-cache counters of the query tier. The query.prefilter.*
  // counters are live (incremented at the query sites); these are snapshot
  // here like the other cache blocks.
  FmCacheStats fm = fmEliminationStats();
  registry.counter("fm_cache.hits").set(fm.hits);
  registry.counter("fm_cache.misses").set(fm.misses);
  registry.counter("fm_cache.entries").set(fm.entries);
  registry.counter("fm_cache.evictions").set(fm.evictions);
}

std::string formatCorpusStats(const CorpusAnalysisResult& result) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  publishCorpusMetrics(result, reg);
  auto value = [&](const char* name) { return reg.counterValue(name).value_or(0); };

  std::ostringstream os;
  std::size_t threads = value("corpus.threads");
  os << "corpus: " << value("corpus.loops") << " loops analyzed on " << threads << " thread"
     << (threads == 1 ? "" : "s") << " — " << value("corpus.parallel") << " parallel, "
     << value("corpus.parallel_after_privatization") << " parallel after privatization, "
     << value("corpus.serial") << " serial\n";
  os << obs::renderSummaryCost(value("summary.block_steps"), value("summary.loop_expansions"),
                               value("summary.call_mappings"), value("summary.peak_list_length"),
                               value("summary.gars_created"))
     << '\n';
  // The two cache blocks are one renderer with per-block labels; the rate
  // precision preserves each block's historical formatting byte-for-byte.
  struct CacheBlock {
    const char* label;
    const char* prefix;
    int rateDecimals;
  };
  for (const CacheBlock& block : {CacheBlock{"query cache", "query_cache", 1},
                                  CacheBlock{"simplify memo", "simplify_memo", 0}}) {
    std::string p(block.prefix);
    os << obs::renderCacheCounters(block.label, value((p + ".hits").c_str()),
                                   value((p + ".misses").c_str()),
                                   value((p + ".entries").c_str()),
                                   value((p + ".evictions").c_str()), block.rateDecimals)
       << '\n';
  }
  return os.str();
}

}  // namespace panorama
