// The parallel analysis driver (see driver.h for the correctness model).
#include "panorama/analysis/driver.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "panorama/builder/builder.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/hsg/hsg.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/fm_incremental.h"

namespace panorama {

std::vector<std::vector<const Procedure*>> callGraphWaves(const SemaResult& sema) {
  // Procedures keyed by name for callee resolution; the graph is acyclic
  // (sema rejects recursion), so the longest-callee-chain depth is well
  // defined and bottomUpOrder already lists callees before callers.
  std::map<std::string, const Procedure*> byName;
  for (const Procedure* p : sema.bottomUpOrder) byName.emplace(p->name, p);

  std::map<const Procedure*, std::size_t> depth;
  std::size_t maxDepth = 0;
  for (const Procedure* p : sema.bottomUpOrder) {
    std::size_t d = 0;
    std::function<void(const std::vector<StmtPtr>&)> walk =
        [&](const std::vector<StmtPtr>& body) {
          for (const StmtPtr& s : body) {
            if (s->kind == Stmt::Kind::Call) {
              auto callee = byName.find(s->callee);
              if (callee != byName.end()) {
                auto it = depth.find(callee->second);
                // Calls resolve into earlier bottomUpOrder entries only.
                if (it != depth.end()) d = std::max(d, it->second + 1);
              }
            }
            walk(s->thenBody);
            walk(s->elseBody);
            walk(s->body);
          }
        };
    walk(p->body);
    depth.emplace(p, d);
    maxDepth = std::max(maxDepth, d);
  }

  std::vector<std::vector<const Procedure*>> waves(maxDepth + 1);
  for (const Procedure* p : sema.bottomUpOrder) waves[depth.at(p)].push_back(p);
  return waves;
}

std::vector<LoopAnalysis> analyzeProgramParallel(SummaryAnalyzer& analyzer, ThreadPool& pool) {
  LoopParallelizer lp(analyzer);
  if (pool.threadCount() <= 1) return lp.analyzeProgram();  // serial, bit-identical

  // Wave k's procedures only call procedures summarized in earlier waves,
  // so each batch races on nothing but the (lock-guarded) memo maps.
  std::size_t waveIndex = 0;
  for (const auto& wave : callGraphWaves(analyzer.sema())) {
    obs::Span waveSpan("summary.wave", "wave " + std::to_string(waveIndex++));
    if (waveSpan.active()) waveSpan.arg("procedures", std::to_string(wave.size()));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(wave.size());
    for (const Procedure* p : wave)
      tasks.push_back([&analyzer, p] { analyzer.procSummary(*p); });
    pool.runBatch(std::move(tasks));
  }

  // Fan the per-loop analyses out. Loops are collected in the serial
  // driver's walk order and written by index, so the result vector is
  // position-identical to analyzeProgram() regardless of completion order.
  struct Item {
    const Stmt* loop;
    const Procedure* proc;
  };
  std::vector<Item> items;
  for (const Procedure* proc : analyzer.sema().bottomUpOrder) {
    std::function<void(const std::vector<StmtPtr>&)> walk =
        [&](const std::vector<StmtPtr>& body) {
          for (const StmtPtr& s : body) {
            if (s->kind == Stmt::Kind::Do) items.push_back({s.get(), proc});
            walk(s->thenBody);
            walk(s->elseBody);
            walk(s->body);
          }
        };
    walk(proc->body);
  }

  std::vector<LoopAnalysis> out(items.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(items.size());
  for (std::size_t k = 0; k < items.size(); ++k)
    tasks.push_back([&lp, &out, &items, k] { out[k] = lp.analyzeLoop(*items[k].loop, *items[k].proc); });
  pool.runBatch(std::move(tasks));
  return out;
}

ProgramAnalysis analyzeProgramUnit(Program program, const AnalysisOptions& options,
                                   ThreadPool& pool) {
  ProgramAnalysis out;
  out.program = std::move(program);
  DiagnosticEngine diags;
  auto sr = [&] {
    obs::Span s("frontend.sema", "program unit");
    return analyze(out.program, diags);
  }();
  if (!sr) {
    out.error = diags.str();
    return out;
  }
  out.sema = std::move(*sr);
  {
    obs::Span s("frontend.hsg", "program unit");
    out.hsg = buildHsg(out.program, out.sema, diags);
  }
  if (diags.hasErrors()) {
    out.error = diags.str();
    return out;
  }
  out.analyzer = std::make_unique<SummaryAnalyzer>(out.program, out.sema, out.hsg, options);
  out.loops = analyzeProgramParallel(*out.analyzer, pool);
  out.ok = true;
  return out;
}

namespace {

/// One corpus kernel's text-to-Program step plus its ProgramAnalysis.
struct KernelJob {
  const CorpusLoop* cl = nullptr;
  ProgramAnalysis pa;
};

void runKernel(KernelJob& job, const AnalysisOptions& options, ThreadPool& pool,
               CorpusIngest ingest) {
  obs::Span span("corpus.kernel", job.cl->id);
  DiagnosticEngine diags;
  auto parsed = [&] {
    obs::Span s("frontend.parse", job.cl->id);
    return parseProgram(job.cl->source, diags);
  }();
  if (!parsed) return;
  Program program = std::move(*parsed);
  if (ingest == CorpusIngest::BuilderRoundTrip) {
    obs::Span s("frontend.rebuild", job.cl->id);
    builder::BuildResult rebuilt = builder::rebuild(program);
    if (!rebuilt.ok()) {
      job.pa.error = rebuilt.error();
      return;
    }
    program = std::move(*rebuilt.program);
  }
  job.pa = analyzeProgramUnit(std::move(program), options, pool);
}

}  // namespace

CorpusAnalysisResult analyzeCorpusParallel(const AnalysisOptions& options, CorpusIngest ingest) {
  obs::Span span("corpus.run", "perfect corpus");
  QueryCache::global().configure(options.cacheCapacity);
  setQueryTierEnabled(options.prefilter);
  clearSimplifyMemo();  // fresh counters; the memo is capacity-gated too
  // The FM elimination cache is deliberately NOT cleared here: its verdicts
  // are pure functions of (system, budget), so entries from earlier runs in
  // the same process are always reusable (capacity and the QueryCache epoch
  // bound it). Long-lived processes analyzing repeatedly get warm
  // eliminations; tests and benches call clearFmEliminationCache() when
  // they need a cold run.
  ThreadPool pool(options.numThreads);

  const std::vector<CorpusLoop>& corpus = perfectCorpus();
  std::vector<KernelJob> jobs(corpus.size());
  for (std::size_t k = 0; k < corpus.size(); ++k) jobs[k].cl = &corpus[k];

  // Quantified kernels need no special casing: every analyzer carries its
  // own ψ binding (PsiDims threaded through CmpCtx), so kernels overlap
  // freely regardless of options.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(jobs.size());
  for (KernelJob& job : jobs)
    tasks.push_back([&job, &options, &pool, ingest] { runKernel(job, options, pool, ingest); });
  pool.runBatch(std::move(tasks));

  CorpusAnalysisResult result;
  result.threadsUsed = pool.threadCount();
  for (const KernelJob& kj : jobs) {
    const ProgramAnalysis& job = kj.pa;
    if (!job.ok) continue;
    SummaryStats s = job.analyzer->stats();
    result.summaryStats.blockSteps += s.blockSteps;
    result.summaryStats.loopExpansions += s.loopExpansions;
    result.summaryStats.callMappings += s.callMappings;
    result.summaryStats.peakListLength =
        std::max(result.summaryStats.peakListLength, s.peakListLength);
    result.summaryStats.garsCreated += s.garsCreated;
    for (const LoopAnalysis& la : job.loops) {
      CorpusRoutineResult r;
      r.kernelId = kj.cl->id;
      r.procName = la.procName;
      r.line = la.line;
      r.classification = la.classification;
      r.report = formatLoopAnalysis(la);
      r.provenance = formatProvenance(la);
      r.provenanceSummary = panorama::provenanceSummary(la);
      r.provenanceEvidenceCount = la.provenance.evidence.size();
      result.loops.push_back(std::move(r));
    }
  }
  result.cacheStats = QueryCache::global().stats();
  result.simplifyStats = simplifyMemoStats();
  return result;
}

}  // namespace panorama
