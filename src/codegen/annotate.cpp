#include "panorama/codegen/annotate.h"

#include <map>
#include <sstream>

namespace panorama {

std::string directiveFor(const LoopAnalysis& la) {
  if (la.classification == LoopClass::Serial) return "";
  std::vector<std::string> privates;
  std::vector<std::string> lastPrivates;
  for (const ArrayPrivatization& ap : la.arrays) {
    if (!ap.privatizable) continue;
    (ap.needsCopyOut ? lastPrivates : privates).push_back(ap.name);
  }
  std::vector<std::string> sumReductions;
  std::vector<std::string> mulReductions;
  for (const ScalarInfo& si : la.scalars) {
    if (si.reduction)
      (si.reductionOp == '*' ? mulReductions : sumReductions).push_back(si.name);
    else if (si.privatizable)
      privates.push_back(si.name);
  }

  std::string out = "c$omp parallel do";
  auto clause = [&](const std::string& name, const std::vector<std::string>& vars) {
    if (vars.empty()) return;
    out += " " + name + "(";
    for (std::size_t k = 0; k < vars.size(); ++k) {
      if (k) out += ", ";
      out += vars[k];
    }
    out += ")";
  };
  clause("private", privates);
  clause("lastprivate", lastPrivates);
  auto reductionClause = [&](char op, const std::vector<std::string>& vars) {
    if (vars.empty()) return;
    out += std::string(" reduction(") + op + ": ";
    for (std::size_t k = 0; k < vars.size(); ++k) {
      if (k) out += ", ";
      out += vars[k];
    }
    out += ")";
  };
  reductionClause('+', sumReductions);
  reductionClause('*', mulReductions);
  return out;
}

namespace {

class Emitter {
 public:
  Emitter(const std::map<const Stmt*, std::string>& directives) : directives_(directives) {}

  std::string emit(const Program& program) {
    for (const Procedure& proc : program.procedures) emitProcedure(proc);
    return os_.str();
  }

 private:
  void line(int indent, const std::string& text) {
    os_ << "      ";
    for (int k = 0; k < indent; ++k) os_ << "  ";
    os_ << text << "\n";
  }

  void emitProcedure(const Procedure& proc) {
    if (proc.isMain) {
      line(0, "program " + proc.name);
    } else {
      std::string head = "subroutine " + proc.name;
      if (!proc.params.empty()) {
        head += "(";
        for (std::size_t k = 0; k < proc.params.size(); ++k) {
          if (k) head += ", ";
          head += proc.params[k];
        }
        head += ")";
      }
      line(0, head);
    }
    emitDeclarations(proc);
    for (const StmtPtr& s : proc.body) emitStmt(*s, 0, /*insideParallel=*/false);
    line(0, "end");
    os_ << "\n";
  }

  void emitDeclarations(const Procedure& proc) {
    auto typeName = [](BaseType t) {
      switch (t) {
        case BaseType::Integer: return "integer";
        case BaseType::Real: return "real";
        case BaseType::Logical: return "logical";
      }
      return "real";
    };
    for (const VarDecl& d : proc.decls) {
      std::string text = std::string(typeName(d.type)) + " " + d.name;
      if (d.isArray()) {
        text += "(";
        for (std::size_t k = 0; k < d.dims.size(); ++k) {
          if (k) text += ", ";
          if (d.dims[k].lo) text += toString(*d.dims[k].lo) + ":";
          text += d.dims[k].up ? toString(*d.dims[k].up) : "*";
        }
        text += ")";
      }
      line(0, text);
    }
    for (const ParamConst& pc : proc.paramConsts)
      line(0, "parameter (" + pc.name + " = " + toString(*pc.value) + ")");
    for (const CommonBlock& blk : proc.commons) {
      std::string text = "common ";
      if (!blk.name.empty()) text += "/" + blk.name + "/ ";
      for (std::size_t k = 0; k < blk.vars.size(); ++k) {
        if (k) text += ", ";
        text += blk.vars[k];
      }
      line(0, text);
    }
  }

  void emitStmt(const Stmt& s, int indent, bool insideParallel) {
    std::string label = s.label ? std::to_string(s.label) + " " : "";
    switch (s.kind) {
      case Stmt::Kind::Assign:
        line(indent, label + toString(*s.lhs) + " = " + toString(*s.rhs));
        return;
      case Stmt::Kind::If:
        line(indent, label + "if (" + toString(*s.cond) + ") then");
        for (const StmtPtr& c : s.thenBody) emitStmt(*c, indent + 1, insideParallel);
        if (!s.elseBody.empty()) {
          line(indent, "else");
          for (const StmtPtr& c : s.elseBody) emitStmt(*c, indent + 1, insideParallel);
        }
        line(indent, "endif");
        return;
      case Stmt::Kind::Do: {
        auto it = directives_.find(&s);
        bool annotate = it != directives_.end() && !insideParallel;
        if (annotate) os_ << it->second << "\n";
        std::string head = label + "do " + s.doVar + " = " + toString(*s.lo) + ", " +
                           toString(*s.hi);
        if (s.step) head += ", " + toString(*s.step);
        line(indent, head);
        for (const StmtPtr& c : s.body)
          emitStmt(*c, indent + 1, insideParallel || annotate);
        line(indent, "enddo");
        if (annotate) os_ << "c$omp end parallel do\n";
        return;
      }
      case Stmt::Kind::Goto:
        line(indent, label + "goto " + std::to_string(s.gotoLabel));
        return;
      case Stmt::Kind::Continue:
        line(indent, label + "continue");
        return;
      case Stmt::Kind::Call: {
        std::string text = label + "call " + s.callee;
        if (!s.args.empty()) {
          text += "(";
          for (std::size_t k = 0; k < s.args.size(); ++k) {
            if (k) text += ", ";
            text += toString(*s.args[k]);
          }
          text += ")";
        }
        line(indent, text);
        return;
      }
      case Stmt::Kind::Return:
        line(indent, label + "return");
        return;
      case Stmt::Kind::Stop:
        line(indent, label + "stop");
        return;
    }
  }

  const std::map<const Stmt*, std::string>& directives_;
  std::ostringstream os_;
};

}  // namespace

std::string emitParallelSource(const Program& program, const std::vector<LoopAnalysis>& loops,
                               const AnnotateOptions& options) {
  std::map<const Stmt*, std::string> directives;
  for (const LoopAnalysis& la : loops) {
    std::string d = directiveFor(la);
    if (!d.empty() && la.loop) directives.emplace(la.loop, std::move(d));
  }
  (void)options;  // outermostOnly is enforced structurally by the emitter
  return Emitter(directives).emit(program);
}

}  // namespace panorama
