// Metrics registry implementation: interned counters/histograms, the JSON
// dump, and the shared stats-line renderers (see metrics.h).
#include "panorama/obs/metrics.h"

#include <bit>
#include <cstdio>

namespace panorama::obs {

void Histogram::observe(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  // bit_width(v) is 64 for v >= 2^63; fold that edge into the last bucket.
  const std::size_t b = std::bit_width(v);
  buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  std::uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = mn == ~0ull ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kBuckets; ++b)
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

std::optional<std::uint64_t> MetricsRegistry::counterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second->value();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->set(0);
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  char buf[288];
  bool first = true;
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                  "\"max\": %llu, \"mean\": %.2f, \"p50\": %.2f, \"p95\": %.2f, "
                  "\"p99\": %.2f, \"buckets\": [",
                  first ? "" : ",", name.c_str(), static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.sum), static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.max), s.mean(), histogramQuantile(s, 0.50),
                  histogramQuantile(s, 0.95), histogramQuantile(s, 0.99));
    out += buf;
    // Buckets trail-trimmed: emit up to the last non-zero log2 bucket.
    std::size_t last = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (s.buckets[b]) last = b + 1;
    for (std::size_t b = 0; b < last; ++b) {
      std::snprintf(buf, sizeof(buf), "%s%llu", b ? ", " : "",
                    static_cast<unsigned long long>(s.buckets[b]));
      out += buf;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string json = toJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

double histogramQuantile(const Histogram::Snapshot& s, double q) {
  if (s.count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(s.min);
  if (q >= 1.0) return static_cast<double>(s.max);
  // Rank in (0, count]; the value is interpolated inside the bucket the
  // rank's cumulative count first reaches.
  double rank = q * static_cast<double>(s.count);
  if (rank < 1.0) rank = 1.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t n = s.buckets[b];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= rank) {
      // Bucket b holds samples with bit_width == b: [2^(b-1), 2^b - 1],
      // except bucket 0, which holds exactly the value 0.
      const double lo = b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = b == 0 ? 0.0 : static_cast<double>((std::uint64_t{1} << (b - 1)) * 2 - 1);
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(n);
      double v = lo + frac * (hi - lo);
      if (v < static_cast<double>(s.min)) v = static_cast<double>(s.min);
      if (v > static_cast<double>(s.max)) v = static_cast<double>(s.max);
      return v;
    }
    cum += n;
  }
  return static_cast<double>(s.max);
}

std::string renderCacheCounters(std::string_view label, std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t entries, std::uint64_t evictions, int rateDecimals) {
  const double total = static_cast<double>(hits + misses);
  const double rate = total == 0 ? 0.0 : static_cast<double>(hits) / total * 100.0;
  char buf[192];
  if (rateDecimals > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%.*s: %llu hits / %llu misses (%.*f%% hit rate), %llu entries, %llu evictions",
                  static_cast<int>(label.size()), label.data(),
                  static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
                  rateDecimals, rate, static_cast<unsigned long long>(entries),
                  static_cast<unsigned long long>(evictions));
  } else {
    // Historical integer-percent form (truncated, not rounded).
    std::snprintf(buf, sizeof(buf),
                  "%.*s: %llu hits / %llu misses (%d%% hit rate), %llu entries, %llu evictions",
                  static_cast<int>(label.size()), label.data(),
                  static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
                  static_cast<int>(rate), static_cast<unsigned long long>(entries),
                  static_cast<unsigned long long>(evictions));
  }
  return std::string(buf);
}

std::string renderSummaryCost(std::uint64_t blockSteps, std::uint64_t loopExpansions,
                              std::uint64_t callMappings, std::uint64_t peakListLength,
                              std::uint64_t garsCreated) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "summary cost: %llu block steps, %llu loop expansions, %llu call mappings, "
                "peak list length %llu, %llu GARs created",
                static_cast<unsigned long long>(blockSteps),
                static_cast<unsigned long long>(loopExpansions),
                static_cast<unsigned long long>(callMappings),
                static_cast<unsigned long long>(peakListLength),
                static_cast<unsigned long long>(garsCreated));
  return std::string(buf);
}

}  // namespace panorama::obs
