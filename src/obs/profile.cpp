// CostProfile construction and rendering (see profile.h for the model).
//
// The builder re-derives span nesting from timestamps alone: events are
// sorted by (tid, start ascending, duration descending) so that a parent
// always precedes its children even when a child shares the parent's start
// timestamp (the RAII destruction order publishes children first, which the
// raw buffer order reflects), and a containment stack then walks each
// thread's events linearly. Two spans on one thread either nest or are
// disjoint — Span is scope-bound — so containment is exact, not heuristic.
#include "panorama/obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

namespace panorama::obs {

namespace {

bool isQueryCategory(std::string_view cat) { return cat.rfind("query.", 0) == 0; }

bool isLoopCategory(std::string_view cat) {
  return cat == "analysis.loop" || cat == "deptest.loop";
}

/// Mutable aggregation node with pointer-stable children (the containment
/// stack holds raw pointers across insertions).
struct Interim {
  std::string category;
  std::uint64_t count = 0;
  std::int64_t totalNs = 0;
  std::int64_t maxNs = 0;
  std::map<std::string, std::unique_ptr<Interim>> children;
};

Interim* childOf(std::map<std::string, std::unique_ptr<Interim>>& children,
                 const std::string& category) {
  std::unique_ptr<Interim>& slot = children[category];
  if (!slot) {
    slot = std::make_unique<Interim>();
    slot->category = category;
  }
  return slot.get();
}

PhaseNode finishNode(const Interim& in) {
  PhaseNode out;
  out.category = in.category;
  out.count = in.count;
  out.totalNs = in.totalNs;
  out.maxNs = in.maxNs;
  std::int64_t childNs = 0;
  for (const auto& [cat, child] : in.children) {
    (void)cat;
    out.children.push_back(finishNode(*child));
    childNs += out.children.back().totalNs;
  }
  out.selfNs = out.totalNs - childNs;
  std::stable_sort(out.children.begin(), out.children.end(),
                   [](const PhaseNode& a, const PhaseNode& b) {
                     return a.totalNs != b.totalNs ? a.totalNs > b.totalNs
                                                   : a.category < b.category;
                   });
  return out;
}

const std::string* argOf(const TraceEvent& ev, std::string_view key) {
  for (const auto& [k, v] : ev.args)
    if (k == key) return &v;
  return nullptr;
}

void appendMs(std::string& out, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  out += buf;
}

void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendQuoted(std::string& out, std::string_view s) {
  out += '"';
  appendEscaped(out, s);
  out += '"';
}

void renderPhaseText(std::string& out, const PhaseNode& node, int depth) {
  out.append(static_cast<std::size_t>(2 + 2 * depth), ' ');
  out += node.category;
  out += ": total ";
  appendMs(out, node.totalNs);
  out += " ms, self ";
  appendMs(out, node.selfNs);
  out += " ms, count " + std::to_string(node.count) + ", max ";
  appendMs(out, node.maxNs);
  out += " ms\n";
  for (const PhaseNode& child : node.children) renderPhaseText(out, child, depth + 1);
}

void renderPhaseJson(std::string& out, const PhaseNode& node) {
  out += "{\"category\": ";
  appendQuoted(out, node.category);
  out += ", \"count\": " + std::to_string(node.count);
  out += ", \"total_ns\": " + std::to_string(node.totalNs);
  out += ", \"self_ns\": " + std::to_string(node.selfNs);
  out += ", \"max_ns\": " + std::to_string(node.maxNs);
  out += ", \"children\": [";
  for (std::size_t k = 0; k < node.children.size(); ++k) {
    if (k) out += ", ";
    renderPhaseJson(out, node.children[k]);
  }
  out += "]}";
}

}  // namespace

CostProfile buildCostProfile(const std::vector<TraceEvent>& events,
                             const ProfileOptions& options) {
  CostProfile profile;
  profile.events = events.size();
  if (events.empty()) return profile;

  // Parent-before-child order: start ascending, then longer span first so a
  // child sharing its parent's start timestamp sorts after it.
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& ev : events) sorted.push_back(&ev);
  std::stable_sort(sorted.begin(), sorted.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->tid != b->tid) return a->tid < b->tid;
    if (a->startNs != b->startNs) return a->startNs < b->startNs;
    return a->durNs > b->durNs;
  });

  std::int64_t minStart = sorted.front()->startNs;
  std::int64_t maxEnd = minStart;
  std::set<std::uint32_t> tids;

  std::map<std::string, std::unique_ptr<Interim>> roots;
  std::map<std::string, ProcCost> procs;
  std::map<std::pair<std::string, std::string>, LoopCost> loops;
  std::vector<QueryCost> queries;

  struct Frame {
    const TraceEvent* ev;
    std::int64_t endNs;
    Interim* node;
    ProcCost* proc;
    LoopCost* loop;
    bool insideQuery;
  };
  std::vector<Frame> stack;

  for (const TraceEvent* ev : sorted) {
    minStart = std::min(minStart, ev->startNs);
    maxEnd = std::max(maxEnd, ev->startNs + ev->durNs);
    tids.insert(ev->tid);

    while (!stack.empty() &&
           !(stack.back().ev->tid == ev->tid && ev->startNs >= stack.back().ev->startNs &&
             ev->startNs + ev->durNs <= stack.back().endNs))
      stack.pop_back();

    Frame frame;
    frame.ev = ev;
    frame.endNs = ev->startNs + ev->durNs;
    frame.proc = stack.empty() ? nullptr : stack.back().proc;
    frame.loop = stack.empty() ? nullptr : stack.back().loop;
    frame.insideQuery = !stack.empty() && stack.back().insideQuery;
    frame.node = childOf(stack.empty() ? roots : stack.back().node->children, ev->category);
    frame.node->count += 1;
    frame.node->totalNs += ev->durNs;
    frame.node->maxNs = std::max(frame.node->maxNs, ev->durNs);

    const std::string category = ev->category;
    if (category == "summary.proc") {
      ProcCost& pc = procs[ev->name];
      pc.name = ev->name;
      pc.summarySpans += 1;
      pc.summaryNs += ev->durNs;
      frame.proc = &pc;
    } else if (isLoopCategory(category) && frame.loop == nullptr) {
      // Only the outermost loop-category span attributes cost: deptest.loop
      // runs nested inside analysis.loop and must not double-count.
      const std::string& name = ev->name;
      std::size_t split = name.find(" DO ");
      std::string procName = split == std::string::npos ? std::string("?") : name.substr(0, split);
      std::string loopName =
          split == std::string::npos ? name : name.substr(split + 1);  // "DO var"
      LoopCost& lc = loops[{procName, loopName}];
      lc.proc = procName;
      lc.name = loopName;
      lc.count += 1;
      lc.totalNs += ev->durNs;
      ProcCost& pc = procs[procName];
      pc.name = procName;
      pc.loopSpans += 1;
      pc.loopNs += ev->durNs;
      frame.proc = &pc;
      frame.loop = &lc;
    }

    if (isQueryCategory(category)) {
      QueryCost qc;
      qc.kind = category;
      qc.name = ev->name;
      qc.durNs = ev->durNs;
      qc.tid = ev->tid;
      if (const std::string* a = argOf(*ev, "expr")) qc.expr = *a;
      if (const std::string* a = argOf(*ev, "ctx")) qc.context = *a;
      if (const std::string* a = argOf(*ev, "verdict")) qc.verdict = *a;
      queries.push_back(std::move(qc));
      if (!frame.insideQuery) {
        // A query issued from inside another query (implies → FM) already
        // counts inside its parent's duration.
        if (frame.proc) {
          frame.proc->coldQueries += 1;
          frame.proc->coldQueryNs += ev->durNs;
        }
        if (frame.loop) {
          frame.loop->coldQueries += 1;
          frame.loop->coldQueryNs += ev->durNs;
        }
      }
      frame.insideQuery = true;
    }

    stack.push_back(frame);
  }

  profile.wallNs = maxEnd - minStart;
  profile.threads = static_cast<std::uint32_t>(tids.size());

  for (const auto& [cat, node] : roots) {
    (void)cat;
    profile.phases.push_back(finishNode(*node));
  }
  std::stable_sort(profile.phases.begin(), profile.phases.end(),
                   [](const PhaseNode& a, const PhaseNode& b) {
                     return a.totalNs != b.totalNs ? a.totalNs > b.totalNs
                                                   : a.category < b.category;
                   });

  for (auto& [name, pc] : procs) {
    (void)name;
    profile.procedures.push_back(std::move(pc));
  }
  std::stable_sort(profile.procedures.begin(), profile.procedures.end(),
                   [](const ProcCost& a, const ProcCost& b) {
                     return a.totalNs() != b.totalNs() ? a.totalNs() > b.totalNs()
                                                       : a.name < b.name;
                   });

  for (auto& [key, lc] : loops) {
    (void)key;
    profile.loops.push_back(std::move(lc));
  }
  std::stable_sort(profile.loops.begin(), profile.loops.end(),
                   [](const LoopCost& a, const LoopCost& b) {
                     if (a.totalNs != b.totalNs) return a.totalNs > b.totalNs;
                     return a.proc != b.proc ? a.proc < b.proc : a.name < b.name;
                   });

  std::stable_sort(queries.begin(), queries.end(), [](const QueryCost& a, const QueryCost& b) {
    if (a.durNs != b.durNs) return a.durNs > b.durNs;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.expr != b.expr) return a.expr < b.expr;
    return a.tid < b.tid;
  });
  if (queries.size() > options.topQueries) queries.resize(options.topQueries);
  profile.topQueries = std::move(queries);

  return profile;
}

std::string renderCostProfileText(const CostProfile& profile) {
  std::string out = "cost profile: wall ";
  appendMs(out, profile.wallNs);
  out += " ms, " + std::to_string(profile.threads) + " thread(s), " +
         std::to_string(profile.events) + " span(s)\n";

  out += "phases:\n";
  for (const PhaseNode& root : profile.phases) renderPhaseText(out, root, 0);

  if (!profile.procedures.empty()) {
    out += "procedures (by total ms):\n";
    for (const ProcCost& pc : profile.procedures) {
      out += "  " + pc.name + ": total ";
      appendMs(out, pc.totalNs());
      out += " ms (summary ";
      appendMs(out, pc.summaryNs);
      out += " ms x" + std::to_string(pc.summarySpans) + ", loops ";
      appendMs(out, pc.loopNs);
      out += " ms x" + std::to_string(pc.loopSpans) + "), cold queries " +
             std::to_string(pc.coldQueries) + " (";
      appendMs(out, pc.coldQueryNs);
      out += " ms)\n";
    }
  }

  if (!profile.loops.empty()) {
    out += "loops (by total ms):\n";
    for (const LoopCost& lc : profile.loops) {
      out += "  " + lc.proc + " " + lc.name + ": total ";
      appendMs(out, lc.totalNs);
      out += " ms x" + std::to_string(lc.count) + ", cold queries " +
             std::to_string(lc.coldQueries) + " (";
      appendMs(out, lc.coldQueryNs);
      out += " ms)\n";
    }
  }

  if (!profile.topQueries.empty()) {
    out += "top cold queries:\n";
    std::size_t rank = 1;
    for (const QueryCost& qc : profile.topQueries) {
      out += "  " + std::to_string(rank++) + ". [" + qc.kind + "] ";
      appendMs(out, qc.durNs);
      out += " ms";
      if (!qc.verdict.empty()) out += " -> " + qc.verdict;
      if (!qc.expr.empty()) out += "\n       expr: " + qc.expr;
      if (!qc.context.empty()) out += "\n       ctx:  " + qc.context;
      out += '\n';
    }
  }

  if (!profile.caches.empty()) {
    out += "caches:\n";
    for (const CacheLine& c : profile.caches) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f%%", c.hitRate() * 100.0);
      out += "  " + c.label + ": " + std::to_string(c.hits) + " hits / " +
             std::to_string(c.misses) + " misses (" + buf + "), " + std::to_string(c.entries) +
             " entries, " + std::to_string(c.evictions) + " evictions (" +
             std::to_string(c.evictedStale) + " stale, " + std::to_string(c.evictedLive) +
             " live)\n";
    }
  }

  for (const SessionReuse& s : profile.sessions) {
    out += "session epoch " + std::to_string(s.epoch) + (s.warm ? " (warm)" : " (cold)") +
           (s.fullInvalidation ? " full invalidation" : "") + ": " +
           std::to_string(s.procedures) + " procedure(s) -- " + std::to_string(s.unchanged) +
           " unchanged, " + std::to_string(s.modified) + " modified, " + std::to_string(s.added) +
           " added, " + std::to_string(s.removed) + " removed; dirty " + std::to_string(s.dirty) +
           "; summaries " + std::to_string(s.summariesReused) + " reused / " +
           std::to_string(s.summariesRecomputed) + " recomputed; loops " +
           std::to_string(s.loopsReused) + " reused / " + std::to_string(s.loopsRecomputed) +
           " recomputed\n";
    out += "  units: " + std::to_string(s.unitsCleanLoops) + " all-cached / " +
           std::to_string(s.unitsDirtyLoops) + " recomputed";
    if (s.loopSkips > 0 || s.partialUnits > 0)
      out += "; loop skips " + std::to_string(s.loopSkips) + " inside " +
             std::to_string(s.partialUnits) + " partial unit(s)";
    if (s.lineRemaps > 0) out += "; line remaps " + std::to_string(s.lineRemaps);
    out += '\n';
    for (const InvalidationCause& c : s.causes) {
      out += "  invalidated " + c.unit + " [" + c.cause + "]";
      if (!c.detail.empty()) out += ": " + c.detail;
      out += '\n';
    }
    for (const LoopReuseCause& c : s.loopCauses) {
      out += "  loop reuse " + c.unit + " line " + std::to_string(c.line) + " [" + c.cause + "]";
      if (!c.detail.empty()) out += ": " + c.detail;
      out += '\n';
    }
  }

  return out;
}

std::string renderCostProfileJson(const CostProfile& profile) {
  std::string out = "{\n  \"schema_version\": 1,\n";
  out += "  \"wall_ns\": " + std::to_string(profile.wallNs) + ",\n";
  out += "  \"threads\": " + std::to_string(profile.threads) + ",\n";
  out += "  \"events\": " + std::to_string(profile.events) + ",\n";

  out += "  \"phases\": [";
  for (std::size_t k = 0; k < profile.phases.size(); ++k) {
    if (k) out += ", ";
    renderPhaseJson(out, profile.phases[k]);
  }
  out += "],\n";

  out += "  \"procedures\": [";
  for (std::size_t k = 0; k < profile.procedures.size(); ++k) {
    const ProcCost& pc = profile.procedures[k];
    if (k) out += ", ";
    out += "{\"name\": ";
    appendQuoted(out, pc.name);
    out += ", \"total_ns\": " + std::to_string(pc.totalNs());
    out += ", \"summary_spans\": " + std::to_string(pc.summarySpans);
    out += ", \"summary_ns\": " + std::to_string(pc.summaryNs);
    out += ", \"loop_spans\": " + std::to_string(pc.loopSpans);
    out += ", \"loop_ns\": " + std::to_string(pc.loopNs);
    out += ", \"cold_queries\": " + std::to_string(pc.coldQueries);
    out += ", \"cold_query_ns\": " + std::to_string(pc.coldQueryNs) + "}";
  }
  out += "],\n";

  out += "  \"loops\": [";
  for (std::size_t k = 0; k < profile.loops.size(); ++k) {
    const LoopCost& lc = profile.loops[k];
    if (k) out += ", ";
    out += "{\"proc\": ";
    appendQuoted(out, lc.proc);
    out += ", \"name\": ";
    appendQuoted(out, lc.name);
    out += ", \"count\": " + std::to_string(lc.count);
    out += ", \"total_ns\": " + std::to_string(lc.totalNs);
    out += ", \"cold_queries\": " + std::to_string(lc.coldQueries);
    out += ", \"cold_query_ns\": " + std::to_string(lc.coldQueryNs) + "}";
  }
  out += "],\n";

  out += "  \"top_queries\": [";
  for (std::size_t k = 0; k < profile.topQueries.size(); ++k) {
    const QueryCost& qc = profile.topQueries[k];
    if (k) out += ", ";
    out += "{\"kind\": ";
    appendQuoted(out, qc.kind);
    out += ", \"name\": ";
    appendQuoted(out, qc.name);
    out += ", \"dur_ns\": " + std::to_string(qc.durNs);
    out += ", \"tid\": " + std::to_string(qc.tid);
    out += ", \"expr\": ";
    appendQuoted(out, qc.expr);
    out += ", \"context\": ";
    appendQuoted(out, qc.context);
    out += ", \"verdict\": ";
    appendQuoted(out, qc.verdict);
    out += "}";
  }
  out += "],\n";

  out += "  \"caches\": [";
  for (std::size_t k = 0; k < profile.caches.size(); ++k) {
    const CacheLine& c = profile.caches[k];
    if (k) out += ", ";
    out += "{\"label\": ";
    appendQuoted(out, c.label);
    out += ", \"hits\": " + std::to_string(c.hits);
    out += ", \"misses\": " + std::to_string(c.misses);
    out += ", \"entries\": " + std::to_string(c.entries);
    out += ", \"evictions\": " + std::to_string(c.evictions);
    out += ", \"evicted_stale\": " + std::to_string(c.evictedStale);
    out += ", \"evicted_live\": " + std::to_string(c.evictedLive) + "}";
  }
  out += "],\n";

  out += "  \"sessions\": [";
  for (std::size_t k = 0; k < profile.sessions.size(); ++k) {
    const SessionReuse& s = profile.sessions[k];
    if (k) out += ", ";
    out += "{\"epoch\": " + std::to_string(s.epoch);
    out += std::string(", \"warm\": ") + (s.warm ? "true" : "false");
    out += std::string(", \"full_invalidation\": ") + (s.fullInvalidation ? "true" : "false");
    out += ", \"procedures\": " + std::to_string(s.procedures);
    out += ", \"unchanged\": " + std::to_string(s.unchanged);
    out += ", \"modified\": " + std::to_string(s.modified);
    out += ", \"added\": " + std::to_string(s.added);
    out += ", \"removed\": " + std::to_string(s.removed);
    out += ", \"dirty\": " + std::to_string(s.dirty);
    out += ", \"summaries_reused\": " + std::to_string(s.summariesReused);
    out += ", \"summaries_recomputed\": " + std::to_string(s.summariesRecomputed);
    out += ", \"loops_reused\": " + std::to_string(s.loopsReused);
    out += ", \"loops_recomputed\": " + std::to_string(s.loopsRecomputed);
    out += ", \"loop_skips\": " + std::to_string(s.loopSkips);
    out += ", \"units_partial\": " + std::to_string(s.partialUnits);
    out += ", \"units_clean_loops\": " + std::to_string(s.unitsCleanLoops);
    out += ", \"units_dirty_loops\": " + std::to_string(s.unitsDirtyLoops);
    out += ", \"line_remaps\": " + std::to_string(s.lineRemaps);
    out += ", \"invalidations\": [";
    for (std::size_t c = 0; c < s.causes.size(); ++c) {
      if (c) out += ", ";
      out += "{\"unit\": ";
      appendQuoted(out, s.causes[c].unit);
      out += ", \"cause\": ";
      appendQuoted(out, s.causes[c].cause);
      out += ", \"detail\": ";
      appendQuoted(out, s.causes[c].detail);
      out += "}";
    }
    out += "], \"loop_reuse\": [";
    for (std::size_t c = 0; c < s.loopCauses.size(); ++c) {
      if (c) out += ", ";
      out += "{\"unit\": ";
      appendQuoted(out, s.loopCauses[c].unit);
      out += ", \"line\": " + std::to_string(s.loopCauses[c].line);
      out += ", \"cause\": ";
      appendQuoted(out, s.loopCauses[c].cause);
      out += ", \"detail\": ";
      appendQuoted(out, s.loopCauses[c].detail);
      out += "}";
    }
    out += "]}";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace panorama::obs
