// Decision-provenance support: the thread-local deep-report sink and small
// trail helpers (see provenance.h for the evidence model).
#include "panorama/obs/provenance.h"

#include <utility>

namespace panorama::obs {

const char* toString(EvidenceKind k) {
  switch (k) {
    case EvidenceKind::NotSummarized: return "not-summarized";
    case EvidenceKind::UnanalyzableHeader: return "unanalyzable-header";
    case EvidenceKind::Candidacy: return "candidacy";
    case EvidenceKind::FlowTest: return "flow-test";
    case EvidenceKind::CopyOutDemotion: return "copy-out-demotion";
    case EvidenceKind::DependenceTest: return "dependence-test";
    case EvidenceKind::ScalarExposed: return "scalar-exposed";
    case EvidenceKind::ScalarReduction: return "scalar-reduction";
    case EvidenceKind::Classification: return "classification";
  }
  return "?";
}

std::vector<const Evidence*> DecisionTrail::ofKind(EvidenceKind kind) const {
  std::vector<const Evidence*> out;
  for (const Evidence& e : evidence)
    if (e.kind == kind) out.push_back(&e);
  return out;
}

namespace {

struct Sink {
  DecisionTrail* trail = nullptr;
  std::string label;
};

Sink& sink() {
  thread_local Sink s;
  return s;
}

}  // namespace

ProvenanceScope::ProvenanceScope(DecisionTrail& trail, std::string label) {
  Sink& s = sink();
  prevTrail_ = s.trail;
  prevLabel_ = std::move(s.label);
  s.trail = &trail;
  s.label = std::move(label);
}

ProvenanceScope::~ProvenanceScope() {
  Sink& s = sink();
  s.trail = prevTrail_;
  s.label = std::move(prevLabel_);
}

void ProvenanceScope::note(const char* source, std::string detail) {
  Sink& s = sink();
  if (!s.trail) return;
  s.trail->notes.push_back({s.label, source, std::move(detail)});
}

bool ProvenanceScope::active() { return sink().trail != nullptr; }

std::string ProvenanceScope::currentLabel() {
  Sink& s = sink();
  return s.trail ? s.label : std::string();
}

}  // namespace panorama::obs
