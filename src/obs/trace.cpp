// Tracer implementation: per-thread chunked buffers and the Chrome
// trace-event JSON exporter (see trace.h for the concurrency contract).
#include "panorama/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace panorama::obs {

namespace {

std::int64_t steadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JSON string escaping for names and arg values (the categories are static
/// identifiers and never need escaping, but names may carry source text).
void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  if (!enabled_.load(std::memory_order_relaxed)) epochNs_ = steadyNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(buffersMutex_);
  buffers_.clear();
  // Threads holding a buffer from the old generation re-register lazily.
  generation_.fetch_add(1, std::memory_order_relaxed);
  epochNs_ = steadyNs();
}

std::int64_t Tracer::nowNs() const { return steadyNs() - epochNs_; }

void Tracer::ThreadBuffer::append(TraceEvent ev) {
  Chunk* chunk = nullptr;
  {
    // The list is only ever grown by this (owning) thread; the lock protects
    // concurrent readers of the vector, not the slots.
    std::lock_guard<std::mutex> lock(chunksMutex);
    if (chunks.empty() || chunks.back()->count.load(std::memory_order_relaxed) == kChunkSize)
      chunks.push_back(std::make_unique<Chunk>());
    chunk = chunks.back().get();
  }
  std::size_t slot = chunk->count.load(std::memory_order_relaxed);
  ev.tid = tid;
  chunk->events[slot] = std::move(ev);
  chunk->count.store(slot + 1, std::memory_order_release);  // publish
}

Tracer::ThreadBuffer& Tracer::localBuffer() {
  struct Local {
    std::uint64_t generation = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local Local local;
  std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (!local.buffer || local.generation != gen) {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(buffersMutex_);
    fresh->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    buffers_.push_back(fresh);
    local.buffer = std::move(fresh);
    local.generation = gen;
  }
  return *local.buffer;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(buffersMutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    std::vector<Chunk*> chunks;
    {
      std::lock_guard<std::mutex> lock(buffer->chunksMutex);
      chunks.reserve(buffer->chunks.size());
      for (const auto& c : buffer->chunks) chunks.push_back(c.get());
    }
    for (Chunk* chunk : chunks) {
      std::size_t n = chunk->count.load(std::memory_order_acquire);
      for (std::size_t k = 0; k < n; ++k) out.push_back(chunk->events[k]);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.startNs < b.startNs;
  });
  return out;
}

std::size_t Tracer::eventCount() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(buffersMutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunkLock(buffer->chunksMutex);
    for (const auto& chunk : buffer->chunks) n += chunk->count.load(std::memory_order_acquire);
  }
  return n;
}

std::string Tracer::chromeTraceJson() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  char buf[128];
  for (std::size_t k = 0; k < events.size(); ++k) {
    const TraceEvent& ev = events[k];
    out += k == 0 ? "\n" : ",\n";
    out += "  {\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    std::snprintf(buf, sizeof(buf), "%u, \"ts\": %.3f, \"dur\": %.3f, ", ev.tid,
                  static_cast<double>(ev.startNs) / 1000.0, static_cast<double>(ev.durNs) / 1000.0);
    out += buf;
    out += "\"cat\": \"";
    appendEscaped(out, ev.category);
    out += "\", \"name\": \"";
    appendEscaped(out, ev.name);
    out += '"';
    if (!ev.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a) out += ", ";
        out += '"';
        appendEscaped(out, ev.args[a].first);
        out += "\": \"";
        appendEscaped(out, ev.args[a].second);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string json = chromeTraceJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Span::arg(std::string_view key, std::string value) {
  if (active_) event_.args.emplace_back(std::string(key), std::move(value));
}

void Span::begin(const char* category, std::string_view name) {
  event_.category = category;
  event_.name = std::string(name);
  event_.startNs = Tracer::global().nowNs();
  active_ = true;
}

void Span::end() {
  Tracer& tracer = Tracer::global();
  event_.durNs = tracer.nowNs() - event_.startNs;
  // A span that straddles clear() measures against a re-based epoch and can
  // come out negative; clamp so consumers (profile builder, Chrome export)
  // never see a negative duration.
  if (event_.durNs < 0) event_.durNs = 0;
  // A span that straddles disable() is still recorded: the buffer always
  // accepts; only *construction* consults the enabled flag.
  tracer.localBuffer().append(std::move(event_));
  active_ = false;
}

}  // namespace panorama::obs
