// Event-log implementation: wait-free-claim ring, records published under
// per-slot spin latches (see telemetry.h for the protocol and for why the
// latch is hand-rolled instead of std::atomic<shared_ptr>).
#include "panorama/obs/telemetry.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "panorama/support/json.h"

namespace panorama::obs {

namespace {

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

namespace {

/// Scoped hold of a slot's spin latch. The held window is one shared_ptr
/// move or copy, so contention is momentary; yield keeps a preempted
/// holder from starving the spinner.
class SlotLatch {
 public:
  explicit SlotLatch(std::atomic<bool>& busy) : busy_(busy) {
    while (busy_.exchange(true, std::memory_order_acquire)) std::this_thread::yield();
  }
  ~SlotLatch() { busy_.store(false, std::memory_order_release); }
  SlotLatch(const SlotLatch&) = delete;
  SlotLatch& operator=(const SlotLatch&) = delete;

 private:
  std::atomic<bool>& busy_;
};

}  // namespace

const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::ConnOpen: return "conn_open";
    case EventKind::ConnClose: return "conn_close";
    case EventKind::SubmitBegin: return "submit_begin";
    case EventKind::SubmitEnd: return "submit_end";
    case EventKind::Error: return "error";
    case EventKind::SlowRequest: return "slow_request";
    case EventKind::Snapshot: return "snapshot";
  }
  return "unknown";
}

EventFields& EventFields::num(std::string_view key, std::uint64_t value) {
  text_ += ",\"";
  text_ += key;
  text_ += "\":";
  text_ += std::to_string(value);
  return *this;
}

EventFields& EventFields::num(std::string_view key, std::int64_t value) {
  text_ += ",\"";
  text_ += key;
  text_ += "\":";
  text_ += std::to_string(value);
  return *this;
}

EventFields& EventFields::real(std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%.*s\":%.3f", static_cast<int>(key.size()), key.data(),
                value);
  text_ += buf;
  return *this;
}

EventFields& EventFields::str(std::string_view key, std::string_view value) {
  text_ += ",\"";
  text_ += key;
  text_ += "\":\"";
  support::appendJsonEscaped(text_, value);
  text_ += '"';
  return *this;
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(roundUpPow2(capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]),
      epochNs_(steadyNowNs()) {}

double EventLog::uptimeMs() const {
  return static_cast<double>(steadyNowNs() - epochNs_) / 1e6;
}

std::uint64_t EventLog::append(EventKind kind, std::string fields) {
  // Claim first so concurrent appends serialize on nothing but the
  // fetch-add; the slot is published whenever this writer's rendering is
  // done. A tail that arrives in between sees the claim as "in flight" and
  // stops its scan there.
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  auto rec = std::make_shared<Rec>();
  rec->seq = seq;
  char head[96];
  std::snprintf(head, sizeof(head), "{\"seq\":%llu,\"ts_ms\":%.3f,\"kind\":\"%s\"",
                static_cast<unsigned long long>(seq),
                static_cast<double>(steadyNowNs() - epochNs_) / 1e6, eventKindName(kind));
  rec->json = head;
  rec->json += fields;
  rec->json += '}';
  Slot& slot = slots_[seq & mask_];
  {
    SlotLatch latch(slot.busy);
    slot.rec = std::move(rec);
  }
  return seq;
}

EventLog::Tail EventLog::tail(std::uint64_t cursor, std::size_t maxEvents) const {
  Tail t;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t s = cursor;
  // Records older than one full ring lap are gone by construction.
  if (head > capacity_ && s < head - capacity_) {
    t.dropped += (head - capacity_) - s;
    s = head - capacity_;
  }
  for (; s < head && t.events.size() < maxEvents; ++s) {
    const Slot& slot = slots_[s & mask_];
    std::shared_ptr<const Rec> rec;
    {
      SlotLatch latch(slot.busy);
      rec = slot.rec;
    }
    if (!rec || rec->seq < s) break;  // claimed but not yet published: stop, retry next tail
    if (rec->seq > s) {
      ++t.dropped;  // overwritten between the head read and this slot read
      continue;
    }
    t.events.push_back(rec->json);
  }
  t.nextCursor = s;
  return t;
}

}  // namespace panorama::obs
