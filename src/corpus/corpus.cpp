#include "panorama/corpus/corpus.h"

namespace panorama {

namespace {

// --------------------------------------------------------------------------
// TRACK nlfilt/300 — Kalman-filter style working vectors filled and consumed
// through subroutine calls with constant extents. Interprocedural analysis
// alone privatizes them (Table 1: T3 only).
// --------------------------------------------------------------------------
const char* kTrackNlfilt = R"(
      program track
      real xt(4, 64), pr(64)
      common /tk/ xt, pr
      integer nu
      nu = 48
      call nlfilt(nu)
      end

      subroutine nlfilt(nu)
      integer nu
      real xt(4, 64), pr(64)
      common /tk/ xt, pr
      real p1(4), p2(4), p(4), pp1(16), pp2(16), pp(16), xsd(4)
      do 300 i = 1, nu
        call predc(p1, p2, i)
        call predp(pp1, pp2, i)
        call combo(p, pp, p1, p2, pp1, pp2)
        call fsim(xsd, p, pp, i)
        pr(i) = xsd(1) + xsd(2) + xsd(3) + xsd(4)
        xt(1, i) = p(1) + pp(1)
 300  continue
      end

      subroutine predc(q1, q2, ii)
      real q1(4), q2(4)
      integer ii
      do k = 1, 4
        q1(k) = k * ii
        q2(k) = k + ii
      enddo
      end

      subroutine predp(qq1, qq2, ii)
      real qq1(16), qq2(16)
      integer ii
      do k = 1, 16
        qq1(k) = k * ii
        qq2(k) = k - ii
      enddo
      end

      subroutine combo(p, pp, p1, p2, pp1, pp2)
      real p(4), pp(16), p1(4), p2(4), pp1(16), pp2(16)
      do k = 1, 4
        p(k) = p1(k) + p2(k)
      enddo
      do k = 1, 16
        pp(k) = pp1(k) * pp2(k)
      enddo
      end

      subroutine fsim(xsd, p, pp, ii)
      real xsd(4), p(4), pp(16)
      integer ii
      do k = 1, 4
        xsd(k) = p(k) + pp(4*k - 3) + ii
      enddo
      end
)";

// --------------------------------------------------------------------------
// MDG interf/1000 — the hard one. Work vectors with symbolic extents (T1)
// filled through calls (T3), one of them written/consumed under matching IF
// conditions (T2), and RL exhibiting the Figure 1(a) pattern that defeats
// the base analysis (Table 2 status "no").
// --------------------------------------------------------------------------
const char* kMdgInterf = R"(
      program mdg
      real res(100)
      common /md/ res
      integer nmol1, n14
      real cut2
      nmol1 = 40
      n14 = 12
      cut2 = 50.0
      call interf(nmol1, n14, cut2)
      end

      subroutine interf(nmol1, n14, cut2)
      integer nmol1, n14
      real cut2
      real res(100)
      common /md/ res
      real rs(20), ff(20), gg(20), xl(20), yl(20), zl(20), rl(20)
      integer kc
      real ttemp
      do 1000 i = 1, nmol1
        call dists(rs, xl, yl, zl, n14, i)
        call forces(ff, gg, xl, yl, zl, n14, cut2)
        kc = 0
        do k = 1, 9
          if (rs(k) .gt. cut2) kc = kc + 1
        enddo
        do 2 k = 2, 5
          if (rs(k + 4) .gt. cut2) goto 2
          rl(k + 4) = rs(k + 4) * 0.5
 2      continue
        if (kc .ne. 0) goto 3
        do k = 11, 14
          ttemp = rl(k - 5) + rs(k - 5)
          res(i) = res(i) + ttemp
        enddo
 3      continue
        do k = 1, n14
          res(i) = res(i) + ff(k)
        enddo
 1000 continue
      end

      subroutine dists(rs, xl, yl, zl, nn, ii)
      real rs(20), xl(20), yl(20), zl(20)
      integer nn, ii
      do k = 1, 20
        rs(k) = k + ii * 2
      enddo
      do k = 1, nn
        xl(k) = k + ii
        yl(k) = k * 2
        zl(k) = k - ii
      enddo
      end

      subroutine forces(ff, gg, xl, yl, zl, nn, cut2)
      real ff(20), gg(20), xl(20), yl(20), zl(20)
      integer nn
      real cut2
      if (cut2 .gt. 10.0) then
        do k = 1, nn
          gg(k) = xl(k) * 0.5
        enddo
      endif
      do k = 1, nn
        ff(k) = xl(k) + yl(k) + zl(k)
        if (cut2 .gt. 10.0) then
          ff(k) = ff(k) + gg(k)
        endif
      enddo
      end
)";

// --------------------------------------------------------------------------
// MDG poteng/2000 — constant-extent neighbor vectors through calls (T3).
// --------------------------------------------------------------------------
const char* kMdgPoteng = R"(
      program mdgp
      real epot(128)
      common /mp/ epot
      integer nmol
      nmol = 56
      call poteng(nmol)
      end

      subroutine poteng(nmol)
      integer nmol
      real epot(128)
      common /mp/ epot
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      do 2000 i = 1, nmol
        call pairs(rs, rl, xl, yl, zl, i)
        call accum(rs, rl, xl, yl, zl, i)
 2000 continue
      end

      subroutine pairs(rs, rl, xl, yl, zl, ii)
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      integer ii
      do k = 1, 30
        xl(k) = k + ii
        yl(k) = k * 2 + ii
        zl(k) = k - ii
        rs(k) = xl(k) + yl(k)
        rl(k) = rs(k) + zl(k)
      enddo
      end

      subroutine accum(rs, rl, xl, yl, zl, ii)
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      integer ii
      real epot(128)
      common /mp/ epot
      do k = 1, 30
        epot(ii) = epot(ii) + rs(k) + rl(k) + xl(k) + yl(k) + zl(k)
      enddo
      end
)";

// --------------------------------------------------------------------------
// TRFD olda/100 — intraprocedural work vectors with symbolic extents (T1).
// --------------------------------------------------------------------------
const char* kTrfdOlda100 = R"(
      program trfd1
      real x(64, 64)
      common /t1/ x
      integer nrs, mrs
      nrs = 40
      mrs = 24
      call olda1(nrs, mrs)
      end

      subroutine olda1(nrs, mrs)
      integer nrs, mrs
      real x(64, 64)
      common /t1/ x
      real xrsiq(64), xij(64)
      do 100 i = 1, nrs
        do j = 1, mrs
          xrsiq(j) = x(i, j) * 2.0
        enddo
        do j = 1, mrs
          xij(j) = xrsiq(j) + 1.0
        enddo
        do j = 1, mrs
          x(i, j) = xij(j)
        enddo
 100  continue
      end
)";

// --------------------------------------------------------------------------
// TRFD olda/300 — same flavor, second transformation stage.
// --------------------------------------------------------------------------
const char* kTrfdOlda300 = R"(
      program trfd3
      real v(64, 64)
      common /t3/ v
      integer num, morb
      num = 36
      morb = 20
      call olda3(num, morb)
      end

      subroutine olda3(num, morb)
      integer num, morb
      real v(64, 64)
      common /t3/ v
      real xijks(64), xkl(64)
      do 300 i = 1, num
        do k = 1, morb
          xkl(k) = v(i, k) + 2.0
        enddo
        do k = 1, morb
          xijks(k) = xkl(k) * v(i, k)
        enddo
        do k = 1, morb
          v(i, k) = xijks(k)
        enddo
 300  continue
      end
)";

// --------------------------------------------------------------------------
// OCEAN ocean/270, /480, /500 — the Figure 1(c) shape: CWORK written and
// consumed by callees whose early-return guards match (T1+T2+T3).
// --------------------------------------------------------------------------
const char* kOcean270 = R"(
      program ocean2
      real grid(80, 80)
      common /oc/ grid
      integer n, m
      n = 44
      m = 28
      call ocean270(n, m)
      end

      subroutine ocean270(n, m)
      integer n, m
      real grid(80, 80)
      common /oc/ grid
      real cwork(80)
      real sc
      do 270 i = 1, n
        sc = i * 1.0
        call ftrvmt(cwork, sc, m)
        call rstore(cwork, sc, m, i)
 270  continue
      end

      subroutine ftrvmt(b, sc, mm)
      real b(80)
      real sc
      integer mm
      if (sc .gt. 75.0) return
      do j = 1, mm
        b(j) = sc + j
      enddo
      end

      subroutine rstore(b, sc, mm, ii)
      real b(80)
      real sc
      integer mm, ii
      real grid(80, 80)
      common /oc/ grid
      if (sc .gt. 75.0) return
      do j = 1, mm
        grid(ii, j) = b(j)
      enddo
      end
)";

const char* kOcean480 = R"(
      program ocean4
      real grid(80, 80)
      common /oc4/ grid
      integer n, m
      n = 40
      m = 24
      call ocean480(n, m)
      end

      subroutine ocean480(n, m)
      integer n, m
      real grid(80, 80)
      common /oc4/ grid
      real cwork(80), cwork2(80)
      real sc
      do 480 i = 1, n
        sc = i * 1.0
        call ftr4(cwork, cwork2, sc, m)
        call str4(cwork, cwork2, sc, m, i)
 480  continue
      end

      subroutine ftr4(b, b2, sc, mm)
      real b(80), b2(80)
      real sc
      integer mm
      if (sc .gt. 70.0) return
      do j = 1, mm
        b(j) = sc + j
        b2(j) = sc - j
      enddo
      end

      subroutine str4(b, b2, sc, mm, ii)
      real b(80), b2(80)
      real sc
      integer mm, ii
      real grid(80, 80)
      common /oc4/ grid
      if (sc .gt. 70.0) return
      do j = 1, mm
        grid(ii, j) = b(j) * b2(j)
      enddo
      end
)";

const char* kOcean500 = R"(
      program ocean5
      real acc(80, 80)
      common /oc5/ acc
      integer n, m
      n = 44
      m = 26
      call ocean500(n, m)
      end

      subroutine ocean500(n, m)
      integer n, m
      real acc(80, 80)
      common /oc5/ acc
      real cwork(80)
      real sc
      do 500 i = 1, n
        sc = i * 2.0
        call csh(cwork, sc, m)
        call cuse(cwork, sc, m, i)
 500  continue
      end

      subroutine csh(b, sc, mm)
      real b(80)
      real sc
      integer mm
      if (sc .gt. 160.0) return
      do j = 1, mm
        b(j) = sc * j
      enddo
      end

      subroutine cuse(b, sc, mm, ii)
      real b(80)
      real sc
      integer mm, ii
      real acc(80, 80)
      common /oc5/ acc
      if (sc .gt. 160.0) return
      do j = 1, mm
        acc(ii, j) = b(j) + 1.0
      enddo
      end
)";

// --------------------------------------------------------------------------
// ARC2D filerx/15 — the Figure 1(b) loop verbatim: WORK(jlow:jup) plus the
// conditionally-written WORK(jmax) whose condition is loop-invariant
// (T1+T2, intraprocedural).
// --------------------------------------------------------------------------
const char* kArc2dFilerx = R"(
      program arcfx
      real q(100, 100)
      common /afx/ q
      integer jlow, jup, jmax, kup
      logical per
      jlow = 2
      jup = 60
      jmax = 61
      kup = 40
      per = .false.
      call filerx(jlow, jup, jmax, kup, per)
      end

      subroutine filerx(jlow, jup, jmax, kup, per)
      integer jlow, jup, jmax, kup
      logical per
      real q(100, 100)
      common /afx/ q
      real work(100)
      do 15 k = 1, kup
        do j = jlow, jup
          work(j) = q(j, k) * 0.25
        enddo
        if (.not. per) then
          work(jmax) = q(jmax, k) * 0.5
        endif
        do j = jlow, jup
          q(j, k) = work(j) + work(jmax)
        enddo
 15   continue
      end
)";

// --------------------------------------------------------------------------
// ARC2D filery/39 — plain symbolic-extent work vector (T1 only).
// --------------------------------------------------------------------------
const char* kArc2dFilery = R"(
      program arcfy
      real q(100, 100)
      common /afy/ q
      integer jlow, jup, kup
      jlow = 2
      jup = 56
      kup = 36
      call filery(jlow, jup, kup)
      end

      subroutine filery(jlow, jup, kup)
      integer jlow, jup, kup
      real q(100, 100)
      common /afy/ q
      real work(100)
      do 39 k = 1, kup
        do j = jlow, jup
          work(j) = q(j, k) * 0.125
        enddo
        do j = jlow, jup
          q(j, k) = work(j) + q(j, k)
        enddo
 39   continue
      end
)";

// --------------------------------------------------------------------------
// ARC2D stepfx/300 and stepfy/420 — symbolic-extent work vector filled by a
// callee (T1+T3, no conditions).
// --------------------------------------------------------------------------
const char* kArc2dStepfx = R"(
      program arcsx
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      integer jlow, jup, kup
      jlow = 2
      jup = 52
      kup = 34
      call stepfx(jlow, jup, kup)
      end

      subroutine stepfx(jlow, jup, kup)
      integer jlow, jup, kup
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      real work(100)
      do 300 k = 1, kup
        call filtx(work, jlow, jup, k)
        do j = jlow, jup
          s(j, k) = work(j)
        enddo
 300  continue
      end

      subroutine filtx(w, jl, ju, k)
      real w(100)
      integer jl, ju, k
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      do j = jl, ju
        w(j) = q(j, k) * 0.25
      enddo
      end
)";

const char* kArc2dStepfy = R"(
      program arcsy
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      integer klow, kup, jup
      klow = 2
      kup = 48
      jup = 30
      call stepfy(klow, kup, jup)
      end

      subroutine stepfy(klow, kup, jup)
      integer klow, kup, jup
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      real work(100)
      do 420 j = 1, jup
        call filty(work, klow, kup, j)
        do k = klow, kup
          s(j, k) = work(k) + s(j, k)
        enddo
 420  continue
      end

      subroutine filty(w, kl, ku, j)
      real w(100)
      integer kl, ku, j
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      do k = kl, ku
        w(k) = q(j, k) * 0.5
      enddo
      end
)";

// --------------------------------------------------------------------------
// Figure 1 examples.
// --------------------------------------------------------------------------
const char* kFig1a = R"(
      program fig1a
      real res(64)
      common /f1a/ res
      integer nmol1
      real cut2
      nmol1 = 24
      cut2 = 12.0
      call interf(nmol1, cut2)
      end

      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real res(64)
      common /f1a/ res
      real a(20), b(20)
      integer kc
      real ttemp
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          ttemp = a(k - 5) * 0.5
          res(i) = res(i) + ttemp
        enddo
 2      continue
      enddo
      end
)";

const char* kFig1b = R"(
      program fig1b
      real q(100, 4)
      common /f1b/ q
      integer jlow, jup, jmax
      logical p
      jlow = 3
      jup = 40
      jmax = 41
      p = .false.
      call filer(jlow, jup, jmax, p)
      end

      subroutine filer(jlow, jup, jmax, p)
      integer jlow, jup, jmax
      logical p
      real q(100, 4)
      common /f1b/ q
      real a(100)
      do i = 1, 4
        do j = jlow, jup
          a(j) = j * i
        enddo
        if (.not. p) then
          a(jmax) = i
        endif
        do j = jlow, jup
          q(j, i) = a(j) + a(jmax)
        enddo
      enddo
      end
)";

const char* kFig1c = R"(
      program fig1c
      real store(64, 64)
      common /f1c/ store
      integer n, m
      n = 32
      m = 20
      call drive(n, m)
      end

      subroutine drive(n, m)
      integer n, m
      real store(64, 64)
      common /f1c/ store
      real a(64)
      real x
      do i = 1, n
        x = i * 1.0
        call in(a, x, m)
        call out(a, x, m, i)
      enddo
      end

      subroutine in(b, x, mm)
      real b(64)
      real x
      integer mm
      if (x .gt. 50.0) return
      do j = 1, mm
        b(j) = x + j
      enddo
      end

      subroutine out(b, x, mm, ii)
      real b(64)
      real x
      integer mm, ii
      real store(64, 64)
      common /f1c/ store
      if (x .gt. 50.0) return
      do j = 1, mm
        store(ii, j) = b(j)
      enddo
      end
)";

}  // namespace

const std::vector<CorpusLoop>& perfectCorpus() {
  static const std::vector<CorpusLoop> corpus = {
      {"TRACK nlfilt/300", "TRACK", "nlfilt", 0,
       {"p1", "p2", "p", "pp1", "pp2", "pp", "xsd"}, {},
       false, false, true, 5.2, 40.0, 0.70, kTrackNlfilt},
      {"MDG interf/1000", "MDG", "interf", 0,
       {"rs", "ff", "gg", "xl", "yl", "zl"}, {"rl"},
       true, true, true, 6.0, 90.0, 0.81, kMdgInterf},
      {"MDG poteng/2000", "MDG", "poteng", 0,
       {"rs", "rl", "xl", "yl", "zl"}, {},
       false, false, true, 5.2, 8.0, 0.66, kMdgPoteng},
      {"TRFD olda/100", "TRFD", "olda1", 0,
       {"xrsiq", "xij"}, {},
       true, false, false, 16.4, 69.0, 2.55, kTrfdOlda100},
      {"TRFD olda/300", "TRFD", "olda3", 0,
       {"xijks", "xkl"}, {},
       true, false, false, 12.3, 29.0, 2.05, kTrfdOlda300},
      {"OCEAN ocean/270", "OCEAN", "ocean270", 0,
       {"cwork"}, {},
       true, true, true, 8.0, 3.0, 0.97, kOcean270},
      {"OCEAN ocean/480", "OCEAN", "ocean480", 0,
       {"cwork", "cwork2"}, {},
       true, true, true, 6.1, 4.0, 0.82, kOcean480},
      {"OCEAN ocean/500", "OCEAN", "ocean500", 0,
       {"cwork"}, {},
       true, true, true, 6.5, 3.0, 0.93, kOcean500},
      {"ARC2D filerx/15", "ARC2D", "filerx", 0,
       {"work"}, {},
       true, true, false, 4.0, 7.0, 0.52, kArc2dFilerx},
      {"ARC2D filery/39", "ARC2D", "filery", 0,
       {"work"}, {},
       true, false, false, 4.0, 7.0, 0.58, kArc2dFilery},
      {"ARC2D stepfx/300", "ARC2D", "stepfx", 0,
       {"work"}, {},
       true, false, true, 3.0, 21.0, 0.47, kArc2dStepfx},
      {"ARC2D stepfy/420", "ARC2D", "stepfy", 0,
       {"work"}, {},
       true, false, true, 3.0, 16.0, 0.43, kArc2dStepfy},
  };
  return corpus;
}

const char* fig1aSource() { return kFig1a; }
const char* fig1bSource() { return kFig1b; }
const char* fig1cSource() { return kFig1c; }

const Stmt* findOuterLoop(const Program& program, std::string_view routine, int index) {
  const Procedure* proc = program.findProcedure(routine);
  if (!proc) return nullptr;
  int seen = 0;
  for (const StmtPtr& s : proc->body)
    if (s->kind == Stmt::Kind::Do && seen++ == index) return s.get();
  return nullptr;
}

}  // namespace panorama
