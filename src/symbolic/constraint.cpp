#include "panorama/symbolic/constraint.h"

#include <algorithm>

#include "panorama/obs/metrics.h"
#include "panorama/obs/provenance.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/absdom.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

bool ConstraintSet::addExprLE0(const SymExpr& e) {
  auto f = AffineForm::fromExpr(e);
  if (!f) return false;
  add({std::move(*f), ConstraintKind::LE0});
  return true;
}

bool ConstraintSet::addExprEQ0(const SymExpr& e) {
  auto f = AffineForm::fromExpr(e);
  if (!f) return false;
  add({std::move(*f), ConstraintKind::EQ0});
  return true;
}

bool ConstraintSet::addExprNE0(const SymExpr& e) {
  auto f = AffineForm::fromExpr(e);
  if (!f) return false;
  add({std::move(*f), ConstraintKind::NE0});
  return true;
}

namespace {

/// Canonical key of the variable part for syntactic clash detection.
bool sameVarPart(const AffineForm& a, const AffineForm& b) { return a.coeffs == b.coeffs; }

/// Table-free rendering of one affine form ("2*v7 - v3 + 1"): the span args
/// on cold FM queries are built deep in the query layer, where no
/// SymbolTable is reachable, so variables print as their interned ids.
void appendAffine(std::string& out, const AffineForm& f) {
  bool first = true;
  for (const auto& [v, coeff] : f.coeffs) {
    if (coeff == 0) continue;
    if (first) {
      if (coeff < 0) out += '-';
    } else {
      out += coeff < 0 ? " - " : " + ";
    }
    const std::int64_t mag = coeff < 0 ? -coeff : coeff;
    if (mag != 1) {
      out += std::to_string(mag);
      out += '*';
    }
    out += 'v';
    out += std::to_string(v.value);
    first = false;
  }
  if (first) {
    out += std::to_string(f.constant);
  } else if (f.constant != 0) {
    out += f.constant < 0 ? " - " : " + ";
    out += std::to_string(f.constant < 0 ? -f.constant : f.constant);
  }
}

/// The whole constraint system, " && "-joined, capped so pathological sets
/// do not bloat the trace buffers.
std::string renderConstraints(const std::vector<LinearConstraint>& constraints) {
  constexpr std::size_t kMaxChars = 400;
  std::string out;
  for (const LinearConstraint& c : constraints) {
    if (!out.empty()) out += " && ";
    if (out.size() > kMaxChars) {
      out += "...";
      break;
    }
    appendAffine(out, c.form);
    switch (c.kind) {
      case ConstraintKind::LE0: out += " <= 0"; break;
      case ConstraintKind::EQ0: out += " = 0"; break;
      case ConstraintKind::NE0: out += " != 0"; break;
    }
    if (c.form.overflow) out += " [overflow]";
  }
  return out;
}

/// Tier 2 dispatch: with the tier on, eliminations go through the memoizing
/// entry point (verdict-identical to the classic one by construction).
Truth fmDecide(std::vector<AffineForm> system, const FmBudget& budget) {
  return queryTierEnabled() ? fourierMotzkinInfeasibleMemo(std::move(system), budget)
                            : fourierMotzkinInfeasible(std::move(system), budget);
}

}  // namespace

Truth ConstraintSet::contradictory(const FmBudget& budget) const {
  // Memoized across the whole run: the verdict is a pure function of the
  // exact constraint vector and the budget (both encoded in the key), so a
  // cached answer is always the answer a cold evaluation would produce.
  QueryCache& cache = QueryCache::global();
  std::vector<std::uint64_t> key;
  if (cache.enabled()) {
    key.reserve(3 + constraints_.size() * 6);
    key.push_back(budget.maxConstraints);
    key.push_back(budget.maxVariables);
    // The tier mode is part of the key: the pre-filter may answer False
    // (witness found) where the classic engine answers Unknown, and raw
    // verdicts must never leak across modes (differential runs share the
    // process-global cache).
    key.push_back(queryTierEnabled() ? 1 : 0);
    for (const LinearConstraint& c : constraints_) {
      key.push_back(static_cast<std::uint64_t>(c.kind));
      key.push_back(c.form.overflow ? 1 : 0);
      key.push_back(static_cast<std::uint64_t>(c.form.constant));
      key.push_back(c.form.coeffs.size());
      for (const auto& [v, coeff] : c.form.coeffs) {
        key.push_back(v.value);
        key.push_back(static_cast<std::uint64_t>(coeff));
      }
    }
    if (auto hit = cache.lookup(QueryCache::Tag::FmContradictory, key)) return *hit;
  }
  Truth verdict = contradictoryUncached(budget);
  if (cache.enabled()) cache.store(QueryCache::Tag::FmContradictory, std::move(key), verdict);
  return verdict;
}

Truth ConstraintSet::contradictoryUncached(const FmBudget& budget) const {
  // Tier 1: the interval/congruence pre-filter. It either discharges the
  // query (exact mirror of the classic screening, or a verified integer
  // witness — never a weaker verdict) or declines, in which case the
  // precise engine below runs as the final authority.
  if (queryTierEnabled()) {
    static obs::Counter& attempts =
        obs::MetricsRegistry::global().counter("query.prefilter.attempts");
    static obs::Counter& hits = obs::MetricsRegistry::global().counter("query.prefilter.hits");
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::global().counter("query.prefilter.fallbacks");
    attempts.add();
    obs::Span prefilterSpan("query.prefilter", "ConstraintSet::contradictory");
    if (prefilterSpan.active())
      prefilterSpan.arg("constraints", std::to_string(constraints_.size()));
    if (auto verdict = absdom::tryDischarge(constraints_, budget)) {
      hits.add();
      if (prefilterSpan.active()) prefilterSpan.arg("verdict", toString(*verdict));
      return *verdict;
    }
    fallbacks.add();
    if (prefilterSpan.active()) prefilterSpan.arg("verdict", "declined");
  }
  // Cold FM evaluations are traced and report Unknown verdicts into the
  // active provenance scope (memoized verdicts skip this path entirely).
  obs::Span span("query.fm", "ConstraintSet::contradictory");
  if (span.active()) {
    span.arg("constraints", std::to_string(constraints_.size()));
    span.arg("expr", renderConstraints(constraints_));
    if (std::string ctx = obs::ProvenanceScope::currentLabel(); !ctx.empty())
      span.arg("ctx", std::move(ctx));
  }
  Truth verdict = contradictoryCold(budget);
  if (span.active()) span.arg("verdict", toString(verdict));
  if (verdict == Truth::Unknown && obs::ProvenanceScope::active())
    obs::ProvenanceScope::note(
        "fm", "Fourier-Motzkin inconclusive on " + std::to_string(constraints_.size()) +
                  " constraints (budget " + std::to_string(budget.maxConstraints) + " constraints/" +
                  std::to_string(budget.maxVariables) + " variables, or non-affine data)");
  return verdict;
}

Truth ConstraintSet::contradictoryCold(const FmBudget& budget) const {
  std::vector<AffineForm> system;
  std::vector<AffineForm> disequalities;
  system.reserve(constraints_.size() * 2);
  for (const LinearConstraint& c : constraints_) {
    if (c.form.overflow) return Truth::Unknown;
    switch (c.kind) {
      case ConstraintKind::LE0:
        system.push_back(c.form);
        break;
      case ConstraintKind::EQ0:
        system.push_back(c.form);
        system.push_back(c.form.scaled(-1));
        break;
      case ConstraintKind::NE0:
        disequalities.push_back(c.form);
        break;
    }
  }
  // Disequality handling. Syntactic clash first (`form == 0 ∧ form != 0`),
  // then — for a small number of disequalities — the semantic version: the
  // inequality system *entails* form == 0 while a NE forbids it.
  for (const AffineForm& d : disequalities) {
    for (const LinearConstraint& c : constraints_) {
      if (c.kind == ConstraintKind::EQ0 && sameVarPart(c.form, d) &&
          c.form.constant == d.constant)
        return Truth::True;
    }
    if (d.coeffs.empty() && d.constant == 0) return Truth::True;  // 0 != 0
  }
  if (disequalities.size() <= 4) {
    for (const AffineForm& d : disequalities) {
      if (d.coeffs.empty()) continue;
      // system ⊨ d == 0 iff both (d <= -1) and (d >= 1) are infeasible.
      std::vector<AffineForm> lower = system;
      AffineForm dl = d;
      dl.constant += 1;  // d + 1 <= 0, i.e. d <= -1
      lower.push_back(std::move(dl));
      if (fmDecide(std::move(lower), budget) != Truth::True) continue;
      std::vector<AffineForm> upper = system;
      AffineForm du = d.scaled(-1);
      du.constant += 1;  // -d + 1 <= 0, i.e. d >= 1
      upper.push_back(std::move(du));
      if (fmDecide(std::move(upper), budget) == Truth::True)
        return Truth::True;  // pinned to the excluded value
    }
  }
  return fmDecide(std::move(system), budget);
}

Truth ConstraintSet::impliesLE0(const SymExpr& e, const FmBudget& budget) const {
  auto f = AffineForm::fromExpr(e);
  if (!f) return Truth::Unknown;
  // negation of (e <= 0) over the integers: e >= 1, i.e. -e + 1 <= 0
  AffineForm neg = f->scaled(-1);
  neg.constant += 1;
  ConstraintSet augmented = *this;
  augmented.add({std::move(neg), ConstraintKind::LE0});
  Truth infeasible = augmented.contradictory(budget);
  if (infeasible == Truth::True) return Truth::True;
  return Truth::Unknown;  // feasible negation does not refute entailment over all models
}

Truth ConstraintSet::impliesEQ0(const SymExpr& e, const FmBudget& budget) const {
  Truth a = impliesLE0(e, budget);
  if (a != Truth::True) return Truth::Unknown;
  Truth b = impliesLE0(-e, budget);
  if (b != Truth::True) return Truth::Unknown;
  return Truth::True;
}

}  // namespace panorama
