// Bounded Fourier-Motzkin elimination with integer tightening.
//
// Input: a system of affine forms, each meaning `form <= 0`. Variables are
// eliminated one at a time; a lower bound (-b*x + g <= 0) combines with an
// upper bound (a*x + f <= 0) into a*g + b*f <= 0. Elimination order greedily
// picks the variable with the fewest resulting combinations. All combined
// coefficients are computed in 128-bit and rejected on overflow, and every
// derived inequality is tightened by its coefficient gcd, which catches many
// integer-only contradictions (e.g. 1 <= 2x <= 1).
//
// The engine is factored into screen/eliminateOne steps (fmdetail) shared
// with the memoizing entry point in predicate/fm_incremental.cpp, and the
// system is kept canonically ordered and duplicate-free between steps so
// memoized and cold eliminations walk identical derivations.
#include <algorithm>
#include <numeric>

#include "panorama/predicate/fm_incremental.h"
#include "panorama/symbolic/constraint.h"

namespace panorama {

namespace {

bool addInto(std::int64_t& acc, std::int64_t v) {
  return !__builtin_add_overflow(acc, v, &acc);
}

bool mulChecked(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

/// a*g_form + b*f_form with overflow checking; false on overflow.
///
/// lower: -b*x + g <= 0 (b>0), upper: a*x + f <= 0 (a>0), x = `skip`.
/// Result: a*g + b*f <= 0, written into `out` (reused across pairs). This
/// fuses lower.scaled(a) + upper.scaled(b) + tightenLE allocation-free; the
/// overflow outcome and the produced form are identical to the composed
/// operations — every product and pairwise sum either chain computes is
/// computed and range-checked here, no more and no fewer (x's coefficients
/// are excluded from both, exactly as extractVar-before-scaled excluded
/// them), so memoized and cold eliminations still walk identical
/// derivations.
bool combineInto(const AffineForm& lower, std::int64_t b, const AffineForm& upper, std::int64_t a,
                 VarId skip, AffineForm& out) {
  out.coeffs.clear();
  out.overflow = false;
  const auto& lc = lower.coeffs;
  const auto& uc = upper.coeffs;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < lc.size() || j < uc.size()) {
    if (j == uc.size() || (i < lc.size() && lc[i].first < uc[j].first)) {
      if (lc[i].first == skip) {
        ++i;
        continue;
      }
      std::int64_t c;
      if (!mulChecked(lc[i].second, a, c)) return false;
      out.coeffs.emplace_back(lc[i].first, c);
      ++i;
    } else if (i == lc.size() || uc[j].first < lc[i].first) {
      if (uc[j].first == skip) {
        ++j;
        continue;
      }
      std::int64_t c;
      if (!mulChecked(uc[j].second, b, c)) return false;
      out.coeffs.emplace_back(uc[j].first, c);
      ++j;
    } else {
      if (lc[i].first == skip) {
        ++i;
        ++j;
        continue;
      }
      std::int64_t cl;
      std::int64_t cu;
      if (!mulChecked(lc[i].second, a, cl)) return false;
      if (!mulChecked(uc[j].second, b, cu)) return false;
      if (!addInto(cl, cu)) return false;
      if (cl != 0) out.coeffs.emplace_back(lc[i].first, cl);
      ++i;
      ++j;
    }
  }
  std::int64_t constant;
  std::int64_t uconst;
  if (!mulChecked(lower.constant, a, constant)) return false;
  if (!mulChecked(upper.constant, b, uconst)) return false;
  if (!addInto(constant, uconst)) return false;
  out.constant = constant;
  out.tightenLE();
  return true;
}

bool constantInfeasible(const AffineForm& f) { return f.coeffs.empty() && f.constant > 0; }

}  // namespace

namespace fmdetail {

void canonOrder(std::vector<AffineForm>& system) {
  std::sort(system.begin(), system.end(), [](const AffineForm& a, const AffineForm& b) {
    if (a.coeffs != b.coeffs) return a.coeffs < b.coeffs;
    return a.constant < b.constant;
  });
  system.erase(std::unique(system.begin(), system.end()), system.end());
}

std::optional<Truth> screen(std::vector<AffineForm>& system) {
  for (AffineForm& f : system) {
    if (f.overflow) return Truth::Unknown;
    f.tightenLE();
    if (constantInfeasible(f)) return Truth::True;
  }
  std::erase_if(system, [](const AffineForm& f) { return f.coeffs.empty(); });
  canonOrder(system);
  return std::nullopt;
}

/// The distinct variables of `system`, ascending, built by sorted insertion
/// (systems are small, so this beats collect + sort + unique).
std::vector<VarId> distinctVars(const std::vector<AffineForm>& system) {
  std::vector<VarId> vars;
  vars.reserve(8);
  for (const AffineForm& f : system)
    for (const auto& [v, c] : f.coeffs) {
      auto it = std::lower_bound(vars.begin(), vars.end(), v);
      if (it == vars.end() || *it != v) vars.insert(it, v);
    }
  return vars;
}

std::size_t countVars(const std::vector<AffineForm>& system) { return distinctVars(system).size(); }

StepResult eliminateOne(std::vector<AffineForm> system, const FmBudget& budget) {
  if (system.size() > budget.maxConstraints) return {Truth::Unknown, {}};

  // Pick the variable minimizing (#lower bounds) * (#upper bounds); ties go
  // to the smallest variable id. One pass over the coefficient lists —
  // systems here are a handful of forms over a handful of variables, so the
  // linear scan of `stats` beats building and sorting a var list.
  struct VarStat {
    VarId v;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };
  std::vector<VarStat> stats;
  stats.reserve(8);
  for (const AffineForm& f : system)
    for (const auto& [v, c] : f.coeffs) {
      auto it = std::find_if(stats.begin(), stats.end(),
                             [v](const VarStat& s) { return s.v == v; });
      if (it == stats.end()) it = stats.insert(stats.end(), VarStat{v});
      if (c > 0)
        ++it->hi;
      else
        ++it->lo;
    }

  VarId best = stats.front().v;
  std::size_t bestCost = SIZE_MAX;
  for (const VarStat& s : stats) {
    const std::size_t cost = s.lo * s.hi;
    if (cost < bestCost || (cost == bestCost && s.v < best)) {
      bestCost = cost;
      best = s.v;
    }
  }

  std::vector<AffineForm> lowers;
  std::vector<AffineForm> uppers;
  std::vector<AffineForm> rest;
  std::vector<std::int64_t> lowerCoef;
  std::vector<std::int64_t> upperCoef;
  rest.reserve(system.size());
  for (AffineForm& f : system) {
    std::int64_t c = f.coeffOf(best);
    if (c > 0) {
      upperCoef.push_back(c);
      uppers.push_back(std::move(f));
    } else if (c < 0) {
      lowerCoef.push_back(-c);
      lowers.push_back(std::move(f));
    } else {
      rest.push_back(std::move(f));
    }
  }
  if (lowers.size() * uppers.size() + rest.size() > budget.maxConstraints)
    return {Truth::Unknown, {}};

  AffineForm derived;
  for (std::size_t i = 0; i < lowers.size(); ++i) {
    for (std::size_t j = 0; j < uppers.size(); ++j) {
      if (!combineInto(lowers[i], lowerCoef[i], uppers[j], upperCoef[j], best, derived))
        return {Truth::Unknown, {}};
      if (constantInfeasible(derived)) return {Truth::True, {}};
      if (!derived.coeffs.empty()) rest.push_back(derived);
    }
  }

  canonOrder(rest);
  return {std::nullopt, std::move(rest)};
}

void anonymizeVars(std::vector<AffineForm>& system) {
  std::vector<VarId> vars = distinctVars(system);
  if (!vars.empty() && vars.back().value == vars.size() - 1) return;  // already dense from 0
  for (AffineForm& f : system)
    for (auto& [v, c] : f.coeffs) {
      auto it = std::lower_bound(vars.begin(), vars.end(), v);
      v = VarId{static_cast<std::uint32_t>(it - vars.begin())};
    }
  // The rank map is monotone, so the canonical sort order is untouched.
}

}  // namespace fmdetail

Truth fourierMotzkinInfeasible(std::vector<AffineForm> system, const FmBudget& budget) {
  if (auto verdict = fmdetail::screen(system)) return *verdict;
  if (fmdetail::countVars(system) > budget.maxVariables) return Truth::Unknown;

  // Invariant: every row of a screened system mentions a variable, so an
  // empty system means every combination closed without a contradiction.
  while (!system.empty()) {
    fmdetail::StepResult step = fmdetail::eliminateOne(std::move(system), budget);
    if (step.verdict) return *step.verdict;
    system = std::move(step.next);
  }
  return Truth::False;
}

}  // namespace panorama
