// Bounded Fourier-Motzkin elimination with integer tightening.
//
// Input: a system of affine forms, each meaning `form <= 0`. Variables are
// eliminated one at a time; a lower bound (-b*x + g <= 0) combines with an
// upper bound (a*x + f <= 0) into a*g + b*f <= 0. Elimination order greedily
// picks the variable with the fewest resulting combinations. All combined
// coefficients are computed in 128-bit and rejected on overflow, and every
// derived inequality is tightened by its coefficient gcd, which catches many
// integer-only contradictions (e.g. 1 <= 2x <= 1).
#include <algorithm>
#include <numeric>

#include "panorama/symbolic/constraint.h"

namespace panorama {

namespace {

/// a*g_form + b*f_form computed with overflow checking; nullopt on overflow.
std::optional<AffineForm> combine(const AffineForm& lower, std::int64_t b,
                                  const AffineForm& upper, std::int64_t a) {
  // lower: -b*x + g <= 0 (b>0), upper: a*x + f <= 0 (a>0). Result: a*g + b*f <= 0.
  AffineForm left = lower.scaled(a);
  AffineForm right = upper.scaled(b);
  AffineForm sum = left + right;
  if (sum.overflow) return std::nullopt;
  sum.tightenLE();
  return sum;
}

bool constantInfeasible(const AffineForm& f) { return f.coeffs.empty() && f.constant > 0; }

}  // namespace

Truth fourierMotzkinInfeasible(std::vector<AffineForm> system, const FmBudget& budget) {
  // Normalize and screen the initial system.
  for (AffineForm& f : system) {
    if (f.overflow) return Truth::Unknown;
    f.tightenLE();
    if (constantInfeasible(f)) return Truth::True;
  }
  std::erase_if(system, [](const AffineForm& f) { return f.coeffs.empty(); });

  std::vector<VarId> vars;
  for (const AffineForm& f : system)
    for (const auto& [v, c] : f.coeffs) vars.push_back(v);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  if (vars.size() > budget.maxVariables) return Truth::Unknown;

  while (!vars.empty()) {
    if (system.size() > budget.maxConstraints) return Truth::Unknown;

    // Pick the variable minimizing (#lower bounds) * (#upper bounds).
    VarId best = vars.front();
    std::size_t bestCost = SIZE_MAX;
    for (VarId v : vars) {
      std::size_t lo = 0;
      std::size_t hi = 0;
      for (const AffineForm& f : system) {
        std::int64_t c = f.coeffOf(v);
        if (c > 0)
          ++hi;
        else if (c < 0)
          ++lo;
      }
      std::size_t cost = lo * hi;
      if (cost < bestCost) {
        bestCost = cost;
        best = v;
      }
    }

    std::vector<AffineForm> lowers;
    std::vector<AffineForm> uppers;
    std::vector<AffineForm> rest;
    std::vector<std::int64_t> lowerCoef;
    std::vector<std::int64_t> upperCoef;
    for (AffineForm& f : system) {
      std::int64_t c = f.coeffOf(best);
      if (c > 0) {
        upperCoef.push_back(c);
        uppers.push_back(std::move(f));
      } else if (c < 0) {
        lowerCoef.push_back(-c);
        lowers.push_back(std::move(f));
      } else {
        rest.push_back(std::move(f));
      }
    }
    if (lowers.size() * uppers.size() + rest.size() > budget.maxConstraints)
      return Truth::Unknown;

    for (std::size_t i = 0; i < lowers.size(); ++i) {
      AffineForm lower = lowers[i];
      lower.extractVar(best);
      for (std::size_t j = 0; j < uppers.size(); ++j) {
        AffineForm upper = uppers[j];
        upper.extractVar(best);
        auto derived = combine(lower, lowerCoef[i], upper, upperCoef[j]);
        if (!derived) return Truth::Unknown;
        if (constantInfeasible(*derived)) return Truth::True;
        if (!derived->coeffs.empty()) rest.push_back(std::move(*derived));
      }
    }

    system = std::move(rest);
    vars.erase(std::remove(vars.begin(), vars.end(), best), vars.end());
  }

  for (const AffineForm& f : system)
    if (constantInfeasible(f)) return Truth::True;
  return Truth::False;
}

}  // namespace panorama
