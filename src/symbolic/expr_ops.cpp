#include "panorama/symbolic/affine.h"

#include <algorithm>
#include <numeric>

namespace panorama {

namespace {

bool addInto(std::int64_t& acc, std::int64_t v) {
  return !__builtin_add_overflow(acc, v, &acc);
}

bool mulChecked(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

}  // namespace

std::int64_t AffineForm::coeffOf(VarId v) const {
  for (const auto& [var, c] : coeffs)
    if (var == v) return c;
  return 0;
}

std::optional<AffineForm> AffineForm::fromExpr(const SymExpr& e) {
  if (e.isPoisoned() || e.degree() > 1) return std::nullopt;
  AffineForm f;
  for (const Term& t : e.terms()) {
    if (t.vars.empty())
      f.constant = t.coef;
    else
      f.coeffs.emplace_back(t.vars[0], t.coef);
  }
  std::sort(f.coeffs.begin(), f.coeffs.end());
  return f;
}

SymExpr AffineForm::toExpr() const {
  if (overflow) return SymExpr::poisoned();
  SymExpr e = SymExpr::constant(constant);
  for (const auto& [var, c] : coeffs) e = e + SymExpr::variable(var).mulConst(c);
  return e;
}

AffineForm AffineForm::scaled(std::int64_t k) const {
  AffineForm r;
  r.overflow = overflow;
  if (k == 0 || overflow) return r;
  for (const auto& [var, c] : coeffs) {
    std::int64_t nc;
    if (!mulChecked(c, k, nc)) {
      r.overflow = true;
      return r;
    }
    r.coeffs.emplace_back(var, nc);
  }
  if (!mulChecked(constant, k, r.constant)) r.overflow = true;
  return r;
}

AffineForm operator+(const AffineForm& a, const AffineForm& b) {
  AffineForm r;
  if (a.overflow || b.overflow) {
    r.overflow = true;
    return r;
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.coeffs.size() || j < b.coeffs.size()) {
    if (j == b.coeffs.size() || (i < a.coeffs.size() && a.coeffs[i].first < b.coeffs[j].first)) {
      r.coeffs.push_back(a.coeffs[i++]);
    } else if (i == a.coeffs.size() || b.coeffs[j].first < a.coeffs[i].first) {
      r.coeffs.push_back(b.coeffs[j++]);
    } else {
      std::int64_t c = a.coeffs[i].second;
      if (!addInto(c, b.coeffs[j].second)) {
        r.overflow = true;
        return r;
      }
      if (c != 0) r.coeffs.emplace_back(a.coeffs[i].first, c);
      ++i;
      ++j;
    }
  }
  r.constant = a.constant;
  if (!addInto(r.constant, b.constant)) r.overflow = true;
  return r;
}

AffineForm operator-(const AffineForm& a, const AffineForm& b) { return a + b.scaled(-1); }

std::int64_t AffineForm::extractVar(VarId v) {
  for (auto it = coeffs.begin(); it != coeffs.end(); ++it) {
    if (it->first == v) {
      std::int64_t c = it->second;
      coeffs.erase(it);
      return c;
    }
  }
  return 0;
}

void AffineForm::tightenLE() {
  if (overflow || coeffs.empty()) return;
  std::int64_t g = 0;
  for (const auto& [var, c] : coeffs) g = std::gcd(g, c);
  if (g <= 1) return;
  for (auto& [var, c] : coeffs) c /= g;
  // g*X + constant <= 0  =>  X <= floor(-constant/g)  =>  X + ceil(constant/g) <= 0
  std::int64_t q = constant / g;
  if (constant % g != 0 && constant > 0) ++q;  // ceiling for positive remainders
  constant = q;
}

}  // namespace panorama
