#include "panorama/symbolic/intern.h"

#include <mutex>

namespace panorama {

ExprInterner& ExprInterner::global() {
  static ExprInterner interner;
  return interner;
}

std::uint64_t ExprInterner::keyOf(const SymExpr& e) {
  const std::size_t s = e.hashValue() % kShards;
  Shard& shard = shards_[s];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    if (auto it = shard.map.find(e); it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (auto it = shard.map.find(e); it != shard.map.end()) return it->second;
  std::uint64_t key = (shard.next++ << kShardBits) | static_cast<std::uint64_t>(s);
  shard.map.emplace(e, key);
  return key;
}

std::size_t ExprInterner::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

}  // namespace panorama
