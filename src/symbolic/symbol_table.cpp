#include "panorama/symbolic/symbol_table.h"

#include <cctype>
#include <mutex>

namespace panorama {

SymbolTable::SymbolTable() : rep_(std::make_unique<Rep>()) {}
SymbolTable::~SymbolTable() = default;
SymbolTable::SymbolTable(SymbolTable&& other) noexcept = default;
SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept = default;

SymbolTable::SymbolTable(const SymbolTable& other) : rep_(std::make_unique<Rep>()) {
  rep_->names = other.rep_->names;
  for (std::size_t s = 0; s < kShards; ++s)
    rep_->shards[s].index = other.rep_->shards[s].index;
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this == &other) return *this;
  auto fresh = std::make_unique<Rep>();
  fresh->names = other.rep_->names;
  for (std::size_t s = 0; s < kShards; ++s)
    fresh->shards[s].index = other.rep_->shards[s].index;
  rep_ = std::move(fresh);
  return *this;
}

std::string SymbolTable::normalize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

SymbolTable::Shard& SymbolTable::shardFor(const std::string& key) const {
  return rep_->shards[std::hash<std::string>{}(key) % kShards];
}

std::pair<VarId, bool> SymbolTable::internIfAbsent(std::string key) {
  Shard& shard = shardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (auto it = shard.index.find(key); it != shard.index.end())
    return {VarId{it->second}, false};
  std::uint32_t id;
  {
    std::unique_lock<std::shared_mutex> nlock(rep_->namesMutex);
    id = static_cast<std::uint32_t>(rep_->names.size());
    rep_->names.push_back(key);
  }
  shard.index.emplace(std::move(key), id);
  return {VarId{id}, true};
}

VarId SymbolTable::intern(std::string_view name) {
  std::string key = normalize(name);
  {
    Shard& shard = shardFor(key);
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    if (auto it = shard.index.find(key); it != shard.index.end()) return VarId{it->second};
  }
  return internIfAbsent(std::move(key)).first;
}

std::optional<VarId> SymbolTable::lookup(std::string_view name) const {
  std::string key = normalize(name);
  const Shard& shard = shardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  return VarId{it->second};
}

const std::string& SymbolTable::name(VarId id) const {
  std::shared_lock<std::shared_mutex> lock(rep_->namesMutex);
  return rep_->names.at(id.value);
}

std::size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(rep_->namesMutex);
  return rep_->names.size();
}

VarId SymbolTable::fresh(std::string_view hint) {
  std::string base = normalize(hint);
  for (int n = 0;; ++n) {
    std::string candidate = base + "'" + (n == 0 ? std::string() : std::to_string(n));
    auto [id, inserted] = internIfAbsent(std::move(candidate));
    if (inserted) return id;
  }
}

}  // namespace panorama
