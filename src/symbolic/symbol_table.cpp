#include "panorama/symbolic/symbol_table.h"

#include <cctype>

namespace panorama {

std::string SymbolTable::normalize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

VarId SymbolTable::intern(std::string_view name) {
  std::string key = normalize(name);
  auto it = index_.find(key);
  if (it != index_.end()) return VarId{it->second};
  std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(key);
  index_.emplace(std::move(key), id);
  return VarId{id};
}

std::optional<VarId> SymbolTable::lookup(std::string_view name) const {
  auto it = index_.find(normalize(name));
  if (it == index_.end()) return std::nullopt;
  return VarId{it->second};
}

VarId SymbolTable::fresh(std::string_view hint) {
  std::string base = normalize(hint);
  for (int n = 0;; ++n) {
    std::string candidate = base + "'" + (n == 0 ? std::string() : std::to_string(n));
    if (!index_.contains(candidate)) {
      std::uint32_t id = static_cast<std::uint32_t>(names_.size());
      names_.push_back(candidate);
      index_.emplace(std::move(candidate), id);
      return VarId{id};
    }
  }
}

}  // namespace panorama
