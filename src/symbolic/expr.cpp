#include "panorama/symbolic/expr.h"

#include <algorithm>
#include <numeric>

namespace panorama {

namespace {

/// Checked int64 arithmetic: nullopt on overflow.
std::optional<std::int64_t> checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return std::nullopt;
  return r;
}

std::optional<std::int64_t> checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) return std::nullopt;
  return r;
}

}  // namespace

bool monomialLess(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

SymExpr SymExpr::constant(std::int64_t c) {
  SymExpr e;
  if (c != 0) e.terms_.push_back(Term{c, {}});
  return e;
}

SymExpr SymExpr::variable(VarId v) {
  SymExpr e;
  e.terms_.push_back(Term{1, {v}});
  return e;
}

SymExpr SymExpr::poisoned() {
  SymExpr e;
  e.poisoned_ = true;
  return e;
}

std::optional<std::int64_t> SymExpr::constantValue() const {
  if (!isConstant()) return std::nullopt;
  return terms_.empty() ? 0 : terms_[0].coef;
}

int SymExpr::degree() const {
  int d = 0;
  for (const Term& t : terms_) d = std::max(d, t.degree());
  return d;
}

bool SymExpr::containsVar(VarId v) const {
  for (const Term& t : terms_)
    if (std::find(t.vars.begin(), t.vars.end(), v) != t.vars.end()) return true;
  return false;
}

void SymExpr::collectVars(std::vector<VarId>& out) const {
  for (const Term& t : terms_) out.insert(out.end(), t.vars.begin(), t.vars.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::int64_t SymExpr::affineCoeff(VarId v) const {
  for (const Term& t : terms_)
    if (t.vars.size() == 1 && t.vars[0] == v) return t.coef;
  return 0;
}

std::int64_t SymExpr::constantPart() const {
  for (const Term& t : terms_)
    if (t.vars.empty()) return t.coef;
  return 0;
}

void SymExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return monomialLess(a.vars, b.vars); });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (Term& t : terms_) {
    if (!merged.empty() && merged.back().vars == t.vars) {
      auto sum = checkedAdd(merged.back().coef, t.coef);
      if (!sum) {
        poisoned_ = true;
        terms_.clear();
        return;
      }
      merged.back().coef = *sum;
    } else {
      merged.push_back(std::move(t));
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0; });
  terms_ = std::move(merged);
}

SymExpr SymExpr::operator-() const { return mulConst(-1); }

SymExpr operator+(const SymExpr& a, const SymExpr& b) {
  if (a.poisoned_ || b.poisoned_) return SymExpr::poisoned();
  SymExpr r;
  r.terms_ = a.terms_;
  r.terms_.insert(r.terms_.end(), b.terms_.begin(), b.terms_.end());
  r.normalize();
  return r;
}

SymExpr operator-(const SymExpr& a, const SymExpr& b) { return a + (-b); }

SymExpr operator*(const SymExpr& a, const SymExpr& b) {
  if (a.poisoned_ || b.poisoned_) return SymExpr::poisoned();
  SymExpr r;
  r.terms_.reserve(a.terms_.size() * b.terms_.size());
  for (const Term& ta : a.terms_) {
    for (const Term& tb : b.terms_) {
      auto coef = checkedMul(ta.coef, tb.coef);
      if (!coef) return SymExpr::poisoned();
      Term t;
      t.coef = *coef;
      t.vars = ta.vars;
      t.vars.insert(t.vars.end(), tb.vars.begin(), tb.vars.end());
      std::sort(t.vars.begin(), t.vars.end());
      r.terms_.push_back(std::move(t));
    }
  }
  r.normalize();
  return r;
}

SymExpr SymExpr::mulConst(std::int64_t k) const {
  if (poisoned_) return poisoned();
  if (k == 0) return SymExpr();
  SymExpr r;
  r.terms_.reserve(terms_.size());
  for (const Term& t : terms_) {
    auto coef = checkedMul(t.coef, k);
    if (!coef) return poisoned();
    r.terms_.push_back(Term{*coef, t.vars});
  }
  return r;  // scaling by a non-zero constant preserves order and uniqueness
}

std::optional<SymExpr> SymExpr::divExact(std::int64_t k) const {
  if (poisoned_ || k == 0) return std::nullopt;
  SymExpr r;
  r.terms_.reserve(terms_.size());
  for (const Term& t : terms_) {
    if (t.coef % k != 0) return std::nullopt;
    r.terms_.push_back(Term{t.coef / k, t.vars});
  }
  return r;  // monomial keys are untouched, so the sorted invariant holds
}

std::int64_t SymExpr::coeffGcd() const {
  std::int64_t g = 0;
  for (const Term& t : terms_) g = std::gcd(g, t.coef);
  return g;
}

SymExpr SymExpr::substitute(VarId v, const SymExpr& replacement) const {
  if (poisoned_) return poisoned();
  if (!containsVar(v)) return *this;
  if (replacement.poisoned_) return poisoned();
  SymExpr result;
  for (const Term& t : terms_) {
    int power = static_cast<int>(std::count(t.vars.begin(), t.vars.end(), v));
    if (power == 0) {
      SymExpr piece;
      piece.terms_.push_back(t);
      result = result + piece;
      continue;
    }
    Term rest;
    rest.coef = t.coef;
    for (VarId w : t.vars)
      if (w != v) rest.vars.push_back(w);
    SymExpr piece;
    piece.terms_.push_back(std::move(rest));
    for (int p = 0; p < power; ++p) piece = piece * replacement;
    result = result + piece;
    if (result.poisoned_) return poisoned();
  }
  return result;
}

SymExpr SymExpr::substitute(const std::map<VarId, SymExpr>& replacements) const {
  // Simultaneous substitution: route every original variable through a fresh
  // copy of the term so replacements cannot feed each other.
  if (poisoned_) return poisoned();
  SymExpr result;
  for (const Term& t : terms_) {
    SymExpr piece = SymExpr::constant(t.coef);
    for (VarId w : t.vars) {
      auto it = replacements.find(w);
      piece = piece * (it != replacements.end() ? it->second : SymExpr::variable(w));
      if (piece.poisoned_) return poisoned();
    }
    result = result + piece;
    if (result.poisoned_) return poisoned();
  }
  return result;
}

std::optional<std::int64_t> SymExpr::evaluate(const Binding& binding) const {
  if (poisoned_) return std::nullopt;
  std::int64_t total = 0;
  for (const Term& t : terms_) {
    std::int64_t prod = t.coef;
    for (VarId v : t.vars) {
      auto it = binding.find(v);
      if (it == binding.end()) return std::nullopt;
      auto p = checkedMul(prod, it->second);
      if (!p) return std::nullopt;
      prod = *p;
    }
    auto s = checkedAdd(total, prod);
    if (!s) return std::nullopt;
    total = *s;
  }
  return total;
}

int SymExpr::compare(const SymExpr& a, const SymExpr& b) {
  if (a.poisoned_ != b.poisoned_) return a.poisoned_ ? 1 : -1;
  if (a.terms_.size() != b.terms_.size()) return a.terms_.size() < b.terms_.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.terms_.size(); ++i) {
    const Term& ta = a.terms_[i];
    const Term& tb = b.terms_[i];
    if (ta.vars != tb.vars) return monomialLess(ta.vars, tb.vars) ? -1 : 1;
    if (ta.coef != tb.coef) return ta.coef < tb.coef ? -1 : 1;
  }
  return 0;
}

std::string SymExpr::str(const SymbolTable& symtab) const {
  if (poisoned_) return "<?>";
  if (terms_.empty()) return "0";
  std::string out;
  bool first = true;
  // Print highest-degree terms first for readability (storage is ascending),
  // but keep the ascending variable order within a degree.
  std::vector<const Term*> order;
  order.reserve(terms_.size());
  for (const Term& t : terms_) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const Term* a, const Term* b) { return a->degree() > b->degree(); });
  for (const Term* tp : order) {
    const Term& t = *tp;
    std::int64_t c = t.coef;
    if (first) {
      if (c < 0) out += '-';
    } else {
      out += c < 0 ? " - " : " + ";
    }
    first = false;
    std::int64_t mag = c < 0 ? -c : c;
    bool needCoef = mag != 1 || t.vars.empty();
    if (needCoef) out += std::to_string(mag);
    for (std::size_t k = 0; k < t.vars.size(); ++k) {
      if (needCoef || k > 0) out += '*';
      out += symtab.name(t.vars[k]);
    }
  }
  return out;
}

std::size_t SymExpr::hashValue() const {
  std::size_t h = poisoned_ ? 0x9e3779b9u : 0;
  for (const Term& t : terms_) {
    h = h * 131 + static_cast<std::size_t>(t.coef);
    for (VarId v : t.vars) h = h * 131 + v.value;
  }
  return h;
}

SymExpr operator+(const SymExpr& a, std::int64_t c) { return a + SymExpr::constant(c); }
SymExpr operator-(const SymExpr& a, std::int64_t c) { return a + SymExpr::constant(-c); }

}  // namespace panorama
