#include "panorama/symbolic/expr.h"

#include <algorithm>
#include <numeric>

#include "panorama/symbolic/arena.h"

namespace panorama {

namespace {

/// Checked int64 arithmetic: nullopt on overflow.
std::optional<std::int64_t> checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return std::nullopt;
  return r;
}

std::optional<std::int64_t> checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) return std::nullopt;
  return r;
}

}  // namespace

bool monomialLess(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

ExprRef::ExprRef() {
  static const detail::ExprNode* zero =
      ExprArena::global().intern({}, /*poisoned=*/false).node_;
  node_ = zero;
}

ExprRef ExprRef::makeCanonical(std::vector<Term> terms, bool poisoned) {
  if (poisoned) terms.clear();
  return ExprArena::global().intern(std::move(terms), poisoned);
}

ExprRef ExprRef::makeNormalized(std::vector<Term> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return monomialLess(a.vars, b.vars); });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (Term& t : terms) {
    if (!merged.empty() && merged.back().vars == t.vars) {
      auto sum = checkedAdd(merged.back().coef, t.coef);
      if (!sum) return poisoned();
      merged.back().coef = *sum;
    } else {
      merged.push_back(std::move(t));
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0; });
  return makeCanonical(std::move(merged), false);
}

ExprRef ExprRef::constant(std::int64_t c) {
  if (c == 0) return ExprRef();
  return makeCanonical({Term{c, {}}}, false);
}

ExprRef ExprRef::variable(VarId v) { return makeCanonical({Term{1, {v}}}, false); }

ExprRef ExprRef::poisoned() {
  static const detail::ExprNode* node =
      ExprArena::global().intern({}, /*poisoned=*/true).node_;
  return ExprRef(node);
}

std::optional<std::int64_t> ExprRef::constantValue() const {
  if (!isConstant()) return std::nullopt;
  return node_->terms.empty() ? 0 : node_->terms[0].coef;
}

int ExprRef::degree() const {
  int d = 0;
  for (const Term& t : node_->terms) d = std::max(d, t.degree());
  return d;
}

bool ExprRef::containsVar(VarId v) const {
  for (const Term& t : node_->terms)
    if (std::find(t.vars.begin(), t.vars.end(), v) != t.vars.end()) return true;
  return false;
}

void ExprRef::collectVars(std::vector<VarId>& out) const {
  for (const Term& t : node_->terms) out.insert(out.end(), t.vars.begin(), t.vars.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::int64_t ExprRef::affineCoeff(VarId v) const {
  for (const Term& t : node_->terms)
    if (t.vars.size() == 1 && t.vars[0] == v) return t.coef;
  return 0;
}

std::int64_t ExprRef::constantPart() const {
  for (const Term& t : node_->terms)
    if (t.vars.empty()) return t.coef;
  return 0;
}

ExprRef ExprRef::operator-() const { return mulConst(-1); }

ExprRef operator+(const ExprRef& a, const ExprRef& b) {
  if (a.isPoisoned() || b.isPoisoned()) return ExprRef::poisoned();
  if (a.isZero()) return b;
  if (b.isZero()) return a;
  std::vector<Term> terms = a.terms();
  terms.insert(terms.end(), b.terms().begin(), b.terms().end());
  return ExprRef::makeNormalized(std::move(terms));
}

ExprRef operator-(const ExprRef& a, const ExprRef& b) { return a + (-b); }

ExprRef operator*(const ExprRef& a, const ExprRef& b) {
  if (a.isPoisoned() || b.isPoisoned()) return ExprRef::poisoned();
  std::vector<Term> terms;
  terms.reserve(a.terms().size() * b.terms().size());
  for (const Term& ta : a.terms()) {
    for (const Term& tb : b.terms()) {
      auto coef = checkedMul(ta.coef, tb.coef);
      if (!coef) return ExprRef::poisoned();
      Term t;
      t.coef = *coef;
      t.vars = ta.vars;
      t.vars.insert(t.vars.end(), tb.vars.begin(), tb.vars.end());
      std::sort(t.vars.begin(), t.vars.end());
      terms.push_back(std::move(t));
    }
  }
  return ExprRef::makeNormalized(std::move(terms));
}

ExprRef ExprRef::mulConst(std::int64_t k) const {
  if (node_->poisoned) return poisoned();
  if (k == 0) return ExprRef();
  if (k == 1) return *this;
  std::vector<Term> terms;
  terms.reserve(node_->terms.size());
  for (const Term& t : node_->terms) {
    auto coef = checkedMul(t.coef, k);
    if (!coef) return poisoned();
    terms.push_back(Term{*coef, t.vars});
  }
  // Scaling by a non-zero constant preserves order and uniqueness.
  return makeCanonical(std::move(terms), false);
}

std::optional<ExprRef> ExprRef::divExact(std::int64_t k) const {
  if (node_->poisoned || k == 0) return std::nullopt;
  std::vector<Term> terms;
  terms.reserve(node_->terms.size());
  for (const Term& t : node_->terms) {
    if (t.coef % k != 0) return std::nullopt;
    terms.push_back(Term{t.coef / k, t.vars});
  }
  // Monomial keys are untouched, so the sorted invariant holds.
  return makeCanonical(std::move(terms), false);
}

std::int64_t ExprRef::coeffGcd() const {
  std::int64_t g = 0;
  for (const Term& t : node_->terms) g = std::gcd(g, t.coef);
  return g;
}

ExprRef ExprRef::substitute(VarId v, const ExprRef& replacement) const {
  if (node_->poisoned) return poisoned();
  if (!containsVar(v)) return *this;
  if (replacement.isPoisoned()) return poisoned();
  if (auto hit = substituteMemoLookup(*this, v, replacement)) return *hit;
  ExprRef result;
  for (const Term& t : node_->terms) {
    int power = static_cast<int>(std::count(t.vars.begin(), t.vars.end(), v));
    if (power == 0) {
      result = result + makeCanonical({t}, false);
      continue;
    }
    Term rest;
    rest.coef = t.coef;
    for (VarId w : t.vars)
      if (w != v) rest.vars.push_back(w);
    ExprRef piece = makeCanonical({std::move(rest)}, false);
    for (int p = 0; p < power; ++p) piece = piece * replacement;
    result = result + piece;
    if (result.isPoisoned()) return poisoned();
  }
  substituteMemoStore(*this, v, replacement, result);
  return result;
}

ExprRef ExprRef::substitute(const std::map<VarId, ExprRef>& replacements) const {
  // Simultaneous substitution: route every original variable through a fresh
  // copy of the term so replacements cannot feed each other.
  if (node_->poisoned) return poisoned();
  ExprRef result;
  for (const Term& t : node_->terms) {
    ExprRef piece = ExprRef::constant(t.coef);
    for (VarId w : t.vars) {
      auto it = replacements.find(w);
      piece = piece * (it != replacements.end() ? it->second : ExprRef::variable(w));
      if (piece.isPoisoned()) return poisoned();
    }
    result = result + piece;
    if (result.isPoisoned()) return poisoned();
  }
  return result;
}

std::optional<std::int64_t> ExprRef::evaluate(const Binding& binding) const {
  if (node_->poisoned) return std::nullopt;
  std::int64_t total = 0;
  for (const Term& t : node_->terms) {
    std::int64_t prod = t.coef;
    for (VarId v : t.vars) {
      auto it = binding.find(v);
      if (it == binding.end()) return std::nullopt;
      auto p = checkedMul(prod, it->second);
      if (!p) return std::nullopt;
      prod = *p;
    }
    auto s = checkedAdd(total, prod);
    if (!s) return std::nullopt;
    total = *s;
  }
  return total;
}

int ExprRef::compare(const ExprRef& a, const ExprRef& b) {
  if (a.node_ == b.node_) return 0;  // hash-consing: one node per value
  if (a.node_->poisoned != b.node_->poisoned) return a.node_->poisoned ? 1 : -1;
  const std::vector<Term>& ta = a.node_->terms;
  const std::vector<Term>& tb = b.node_->terms;
  if (ta.size() != tb.size()) return ta.size() < tb.size() ? -1 : 1;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].vars != tb[i].vars) return monomialLess(ta[i].vars, tb[i].vars) ? -1 : 1;
    if (ta[i].coef != tb[i].coef) return ta[i].coef < tb[i].coef ? -1 : 1;
  }
  return 0;
}

std::string ExprRef::str(const SymbolTable& symtab) const {
  if (node_->poisoned) return "<?>";
  if (node_->terms.empty()) return "0";
  std::string out;
  bool first = true;
  // Print highest-degree terms first for readability (storage is ascending),
  // but keep the ascending variable order within a degree.
  std::vector<const Term*> order;
  order.reserve(node_->terms.size());
  for (const Term& t : node_->terms) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const Term* a, const Term* b) { return a->degree() > b->degree(); });
  for (const Term* tp : order) {
    const Term& t = *tp;
    std::int64_t c = t.coef;
    if (first) {
      if (c < 0) out += '-';
    } else {
      out += c < 0 ? " - " : " + ";
    }
    first = false;
    std::int64_t mag = c < 0 ? -c : c;
    bool needCoef = mag != 1 || t.vars.empty();
    if (needCoef) out += std::to_string(mag);
    for (std::size_t k = 0; k < t.vars.size(); ++k) {
      if (needCoef || k > 0) out += '*';
      out += symtab.name(t.vars[k]);
    }
  }
  return out;
}

ExprRef operator+(const ExprRef& a, std::int64_t c) { return a + ExprRef::constant(c); }
ExprRef operator-(const ExprRef& a, std::int64_t c) { return a + ExprRef::constant(-c); }

}  // namespace panorama
