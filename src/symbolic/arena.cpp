#include "panorama/symbolic/arena.h"

#include <algorithm>
#include <mutex>

#include "panorama/support/memo_cache.h"

namespace panorama {

namespace {

std::size_t hashTerms(const std::vector<Term>& terms, bool poisoned) {
  std::size_t h = poisoned ? 0x9e3779b9u : 0;
  for (const Term& t : terms) {
    h = h * 131 + static_cast<std::size_t>(t.coef);
    for (VarId v : t.vars) h = h * 131 + v.value;
  }
  return h;
}

std::size_t footprint(const detail::ExprNode& n) {
  std::size_t b = sizeof(detail::ExprNode) + n.terms.capacity() * sizeof(Term);
  for (const Term& t : n.terms) b += t.vars.capacity() * sizeof(VarId);
  return b;
}

}  // namespace

ExprArena& ExprArena::global() {
  static ExprArena arena;
  return arena;
}

ExprRef ExprArena::intern(std::vector<Term> terms, bool poisoned) {
  const std::size_t h = hashTerms(terms, poisoned);
  const std::size_t s = h % kShards;
  Shard& shard = shards_[s];
  auto find = [&]() -> const detail::ExprNode* {
    auto it = shard.index.find(h);
    if (it == shard.index.end()) return nullptr;
    for (const detail::ExprNode* n : it->second)
      if (n->poisoned == poisoned && n->terms == terms) return n;
    return nullptr;
  };
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    if (const detail::ExprNode* n = find()) return ExprRef(n);
  }
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (const detail::ExprNode* n = find()) return ExprRef(n);
  detail::ExprNode& node = shard.nodes.emplace_back();
  node.terms = std::move(terms);
  node.poisoned = poisoned;
  node.hash = h;
  node.id = (shard.next++ << kShardBits) | static_cast<std::uint64_t>(s);
  shard.index[h].push_back(&node);
  shard.bytes += footprint(node);
  return ExprRef(&node);
}

ExprArena::Stats ExprArena::stats() const {
  Stats out;
  bool first = true;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const std::size_t n = shard.nodes.size();
    out.distinct += n;
    out.bytes += shard.bytes;
    out.minShard = first ? n : std::min(out.minShard, n);
    out.maxShard = first ? n : std::max(out.maxShard, n);
    first = false;
  }
  return out;
}

namespace {

/// Sharded bounded FIFO memo for ExprRef::substitute. Same discipline as the
/// predicate SimplifyMemo: exact keys, eviction only forgets.
class SubstituteMemo {
 public:
  static SubstituteMemo& global() {
    static SubstituteMemo memo;
    return memo;
  }

  struct Key {
    std::uint64_t expr;
    std::uint32_t var;
    std::uint64_t repl;
    friend bool operator==(const Key&, const Key&) = default;
  };

  std::optional<ExprRef> find(const Key& key) {
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end()) return it->second;
    return std::nullopt;
  }

  void store(const Key& key, const ExprRef& value) {
    const std::size_t cap = QueryCache::global().capacity();
    if (cap == 0) return;
    const std::size_t perShard = cap / kShards > 0 ? cap / kShards : 1;
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.contains(key)) return;  // raced: identical value anyway
    while (shard.map.size() >= perShard && !shard.order.empty()) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
    }
    shard.order.push_back(key);
    shard.map.emplace(key, value);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      std::size_t h = 0xcbf29ce484222325ull;
      for (std::uint64_t w : {k.expr, static_cast<std::uint64_t>(k.var), k.repl}) {
        h ^= static_cast<std::size_t>(w);
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, ExprRef, KeyHasher> map;
    std::deque<Key> order;
  };

  Shard& shardFor(const Key& key) { return shards_[KeyHasher{}(key) % kShards]; }

  std::array<Shard, kShards> shards_;
};

}  // namespace

std::optional<ExprRef> substituteMemoLookup(const ExprRef& e, VarId v, const ExprRef& r) {
  if (!QueryCache::global().enabled()) return std::nullopt;
  return SubstituteMemo::global().find({e.id(), v.value, r.id()});
}

void substituteMemoStore(const ExprRef& e, VarId v, const ExprRef& r, const ExprRef& result) {
  if (!QueryCache::global().enabled()) return;
  SubstituteMemo::global().store({e.id(), v.value, r.id()}, result);
}

}  // namespace panorama
