// SUM_call (§4.1): the callee's memoized summary with real-to-formal
// mapping — scalar formals substitute to actual expressions, array formals
// remap (identically shaped, or 1-D with an element-offset actual), COMMON
// variables pass through unchanged.
#include <mutex>

#include "panorama/summary/summary.h"

namespace panorama {

namespace {

struct ArrayMap {
  enum class Kind { Drop, OmegaOnCaller, Shifted } kind = Kind::Drop;
  ArrayId caller;                // valid unless Drop
  std::vector<SymExpr> offsets;  // per-dimension index shift (Shifted)
};

}  // namespace

SummaryAnalyzer::NodeSets SummaryAnalyzer::sumCall(const HsgNode& n, const ProcSymbols& sym) {
  const Stmt& call = *n.callStmt;
  ++stats_.callMappings;
  NodeSets out;

  // Argument expressions are evaluated at the call: their array reads are
  // uses (this also covers by-reference element actuals, over-approximately).
  for (const ExprPtr& a : call.args) addUses(*a, sym, out.ue);

  const Procedure* callee = program_.findProcedure(call.callee);
  auto degradeAll = [&]() {
    // No usable summary: Ω on every array actual and every COMMON array the
    // callee (transitively) could reach. Without interprocedural analysis we
    // use the whole program's commons — structural, not flow, information.
    for (const ExprPtr& a : call.args) {
      std::string_view name = a->kind == Expr::Kind::VarRef || a->kind == Expr::Kind::ArrayRef
                                  ? std::string_view(a->name)
                                  : std::string_view();
      if (name.empty()) continue;
      if (auto id = sym.arrayId(name)) {
        int rank = sema_.arrays.shape(*id).rank();
        out.mod.add(Gar::omega(*id, rank));
        out.ue.add(Gar::omega(*id, rank));
      }
    }
    for (std::size_t k = 0; k < sema_.arrays.size(); ++k) {
      ArrayId id{static_cast<std::uint32_t>(k)};
      const std::string& gname = sema_.arrays.name(id);
      bool procLocal = false;
      for (const Procedure& pr : program_.procedures)
        if (gname.starts_with(pr.name + "::")) procLocal = true;
      if (!procLocal) {  // COMMON naming convention: "blk::var"
        out.mod.add(Gar::omega(id, sema_.arrays.shape(id).rank()));
        out.ue.add(Gar::omega(id, sema_.arrays.shape(id).rank()));
      }
    }
  };

  if (!callee || !options_.interprocedural) {
    degradeAll();
    out.de = out.ue;
    return out;
  }

  // The caller's summary is about to fold in the callee's: record the
  // dependency edge the incremental session keys invalidation on.
  if (sym.proc) {
    std::unique_lock<std::shared_mutex> lock(depsMutex_);
    callDeps_[sym.proc->name].insert(callee->name);
  }

  const ProcSummary& cs = procSummary(*callee);
  const ProcSymbols& calleeSym = sema_.of(*callee);

  // Build the real-to-formal maps.
  std::map<VarId, SymExpr> scalarMap;
  std::map<ArrayId, ArrayMap> arrayMap;
  for (std::size_t i = 0; i < callee->params.size() && i < call.args.size(); ++i) {
    const std::string& formal = callee->params[i];
    const Expr& actual = *call.args[i];
    if (calleeSym.isArray(formal)) {
      ArrayId fid = *calleeSym.arrayId(formal);
      const ArrayShape& fshape = sema_.arrays.shape(fid);
      ArrayMap m;
      if ((actual.kind == Expr::Kind::VarRef || actual.kind == Expr::Kind::ArrayRef) &&
          sym.isArray(actual.name)) {
        // A named actual is at least attributable: default to Ω on it.
        m.kind = ArrayMap::Kind::OmegaOnCaller;
        m.caller = *sym.arrayId(actual.name);
      }
      if (actual.kind == Expr::Kind::VarRef && sym.isArray(actual.name)) {
        ArrayId aid = *sym.arrayId(actual.name);
        const ArrayShape& ashape = sema_.arrays.shape(aid);
        if (ashape.rank() == fshape.rank()) {
          m.kind = ArrayMap::Kind::Shifted;
          for (int d = 0; d < fshape.rank(); ++d) {
            // Same memory: formal index f maps to actual index
            // f - lb(formal) + lb(actual).
            SymExpr off = ashape.declaredDims[d].lo - fshape.declaredDims[d].lo;
            m.offsets.push_back(off.isPoisoned() ? SymExpr::constant(0) : std::move(off));
          }
        }
      } else if (actual.kind == Expr::Kind::ArrayRef && sym.isArray(actual.name) &&
                 fshape.rank() == 1 && actual.args.size() == 1) {
        // 1-D offset passing: CALL f(A(k)) — formal index f maps to
        // A(f - lb(formal) + k).
        ArrayId aid = *sym.arrayId(actual.name);
        if (sema_.arrays.shape(aid).rank() == 1) {
          SymExpr k = lowerValue(*actual.args[0], sym);
          if (!k.isPoisoned()) {
            m.kind = ArrayMap::Kind::Shifted;
            m.offsets.push_back(k - fshape.declaredDims[0].lo);
          }
        }
      }
      arrayMap[fid] = std::move(m);
      continue;
    }
    // Scalar formal.
    if (auto fid = calleeSym.scalarId(formal)) {
      scalarMap[*fid] = lowerValue(actual, sym);
      // By-reference element actual written by the callee: a tainted write.
      if (actual.kind == Expr::Kind::ArrayRef && sym.isArray(actual.name)) {
        bool modified = std::find(cs.modifiedScalars.begin(), cs.modifiedScalars.end(), *fid) !=
                        cs.modifiedScalars.end();
        if (modified)
          out.mod.add(Gar::make(Pred::makeUnknown(), lowerRef(actual, sym), psi_));
      }
    }
  }

  // Map the callee's summaries into the caller's frame.
  auto mapList = [&](const GarList& list, GarList& dst) {
    for (const Gar& g : list.gars()) {
      Gar mapped = g.substituted(scalarMap);
      auto am = arrayMap.find(mapped.array());
      if (am == arrayMap.end()) {
        // COMMON (or unexpected local): ids are global, keep as-is.
        dst.add(std::move(mapped));
        continue;
      }
      if (am->second.kind == ArrayMap::Kind::Drop) continue;  // no aliasable actual
      if (am->second.kind == ArrayMap::Kind::OmegaOnCaller) {
        dst.add(Gar::omega(am->second.caller, sema_.arrays.shape(am->second.caller).rank()));
        continue;
      }
      Region r = mapped.region();
      r.array = am->second.caller;
      for (std::size_t d = 0; d < r.dims.size() && d < am->second.offsets.size(); ++d) {
        const SymExpr& off = am->second.offsets[d];
        if (off.isZero() || r.dims[d].isUnknown()) continue;
        r.dims[d].lo = r.dims[d].lo + off;
        r.dims[d].up = r.dims[d].up + off;
      }
      dst.add(Gar::make(mapped.guard(), std::move(r), psi_));
    }
  };
  GarList calleeMod;
  GarList calleeUe;
  GarList calleeDe;
  mapList(cs.mod, calleeMod);
  mapList(cs.ue, calleeUe);
  mapList(cs.de, calleeDe);
  if (options_.quantified) {
    // Quantified atoms name callee-frame arrays; remapping them is future
    // work — degrade to Δ at the boundary.
    taintAllQuantified(calleeMod);
    taintAllQuantified(calleeUe);
    taintAllQuantified(calleeDe);
  }
  out.mod = garUnion(out.mod, calleeMod, ctx_, &sema_.arrays);
  out.ue = garUnion(out.ue, calleeUe, ctx_, &sema_.arrays);
  out.de = garUnion(out.de, calleeDe, ctx_, &sema_.arrays);
  note(out.mod);
  note(out.ue);
  return out;
}

}  // namespace panorama
