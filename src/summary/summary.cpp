#include "panorama/summary/summary.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "panorama/obs/trace.h"

namespace panorama {

SummaryAnalyzer::SummaryAnalyzer(const Program& program, SemaResult& sema, const Hsg& hsg,
                                 AnalysisOptions options)
    : program_(program), sema_(sema), hsg_(hsg), options_(options) {
  // Activate (or deactivate) the ψ1 dimension symbol for this analyzer.
  // VarIds are per-SymbolTable: each analyzer resolves its own binding from
  // its kernel's symbol table and threads it through every CmpCtx and
  // Gar::make call, so concurrent analyses of different kernels never share
  // ψ state and the parallel driver needs no serialization.
  psi_.dim1 = options_.quantified ? sema_.symbols.intern("psi$1") : VarId{};
  ctx_ = CmpCtx(ConstraintSet{}, FmBudget{}, psi_);
}

void SummaryAnalyzer::analyzeAll() {
  for (const Procedure* proc : sema_.bottomUpOrder) procSummary(*proc);
}

const LoopSummary* SummaryAnalyzer::loopSummary(const Stmt* doStmt) const {
  std::shared_lock<std::shared_mutex> lock(loopMutex_);
  auto it = loopSummaries_.find(doStmt);
  return it == loopSummaries_.end() ? nullptr : &it->second;
}

SummaryStats SummaryAnalyzer::stats() const {
  SummaryStats out;
  out.blockSteps = stats_.blockSteps.load(std::memory_order_relaxed);
  out.loopExpansions = stats_.loopExpansions.load(std::memory_order_relaxed);
  out.callMappings = stats_.callMappings.load(std::memory_order_relaxed);
  out.peakListLength = stats_.peakListLength.load(std::memory_order_relaxed);
  out.garsCreated = stats_.garsCreated.load(std::memory_order_relaxed);
  return out;
}

void SummaryAnalyzer::note(const GarList& list) {
  std::size_t prev = stats_.peakListLength.load(std::memory_order_relaxed);
  while (list.size() > prev &&
         !stats_.peakListLength.compare_exchange_weak(prev, list.size(),
                                                      std::memory_order_relaxed)) {
  }
  stats_.garsCreated += list.size();
}

const std::set<VarId>& SummaryAnalyzer::indexVarsOf(const ProcSymbols& sym) const {
  {
    std::shared_lock<std::shared_mutex> lock(indexVarMutex_);
    auto it = indexVarCache_.find(sym.proc);
    if (it != indexVarCache_.end()) return it->second;
  }
  std::set<VarId> out;
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& b) {
    for (const StmtPtr& s : b) {
      if (s->kind == Stmt::Kind::Do)
        if (auto id = sym.scalarId(s->doVar)) out.insert(*id);
      walk(s->thenBody);
      walk(s->elseBody);
      walk(s->body);
    }
  };
  if (sym.proc) walk(sym.proc->body);
  std::unique_lock<std::shared_mutex> lock(indexVarMutex_);
  return indexVarCache_.emplace(sym.proc, std::move(out)).first->second;
}

SymExpr SummaryAnalyzer::lowerValue(const Expr& e, const ProcSymbols& sym) const {
  SymExpr v = lowerInt(e, sym);
  if (!options_.symbolicAnalysis && !v.isPoisoned()) {
    // The T1-off baseline reasons about loop indices and constants only;
    // other symbolic terms (the n's, jmax's and mrs's of the Perfect
    // kernels) are beyond it.
    std::vector<VarId> vars;
    v.collectVars(vars);
    const std::set<VarId>& indices = indexVarsOf(sym);
    for (VarId var : vars)
      if (!indices.count(var)) return SymExpr::poisoned();
  }
  return v;
}

Pred SummaryAnalyzer::lowerGuard(const Expr& e, const ProcSymbols& sym) {
  if (options_.quantified && options_.ifConditions && options_.symbolicAnalysis)
    return lowerGuardQuantified(e, sym);
  return lowerGuardBase(e, sym);
}

Pred SummaryAnalyzer::lowerGuardBase(const Expr& e, const ProcSymbols& sym) const {
  if (!options_.ifConditions) return Pred::makeUnknown();
  Pred p = lowerCond(e, sym);
  if (!options_.symbolicAnalysis) {
    // Without symbolic analysis only logical-variable facts survive;
    // relational content is symbolic arithmetic by nature.
    Pred reduced = p.isUnknown() ? Pred::makeUnknown() : Pred::makeTrue();
    for (const Disjunct& clause : p.clauses()) {
      bool logicalOnly = std::all_of(clause.atoms.begin(), clause.atoms.end(), [](const Atom& a) {
        return a.kind() == Atom::Kind::LogVar;
      });
      if (!logicalOnly) {
        reduced = reduced && Pred::makeUnknown();
        continue;
      }
      Pred keep = Pred::makeFalse();
      for (const Atom& a : clause.atoms) keep = keep || Pred::atom(a);
      reduced = reduced && keep;
    }
    return reduced;
  }
  return p;
}

void SummaryAnalyzer::poisonScalars(GarList& list, const std::vector<VarId>& vars) const {
  if (vars.empty() || list.empty()) return;
  std::map<VarId, SymExpr> map;
  for (VarId v : vars)
    if (list.containsVar(v)) map.emplace(v, SymExpr::poisoned());
  if (map.empty()) return;
  list = list.substituted(map);
}

void SummaryAnalyzer::addUses(const Expr& e, const ProcSymbols& sym, GarList& ue) {
  std::function<void(const Expr&)> visit = [&](const Expr& x) {
    for (const ExprPtr& a : x.args) visit(*a);
    if (x.kind == Expr::Kind::ArrayRef)
      ue.add(Gar::make(Pred::makeTrue(), lowerRef(x, sym), psi_));
  };
  visit(e);
}

Region SummaryAnalyzer::lowerRef(const Expr& ref, const ProcSymbols& sym) {
  Region r;
  r.array = *sym.arrayId(ref.name);
  for (const ExprPtr& sub : ref.args) {
    SymExpr v = lowerValue(*sub, sym);
    if (v.isPoisoned())
      r.dims.push_back(SymRange::unknown());
    else
      r.dims.push_back(SymRange::point(std::move(v)));
  }
  return r;
}

void SummaryAnalyzer::collectAssignedScalars(const std::vector<const Stmt*>& stmts,
                                             const ProcSymbols& sym, std::vector<VarId>& out,
                                             bool throughCalls) {
  std::function<void(const Stmt&)> visit = [&](const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        if (s.lhs->kind == Expr::Kind::VarRef) {
          if (auto id = sym.scalarId(s.lhs->name)) out.push_back(*id);
        }
        break;
      case Stmt::Kind::Do: {
        if (auto id = sym.scalarId(s.doVar)) out.push_back(*id);
        break;
      }
      case Stmt::Kind::Call: {
        if (!throughCalls) break;
        const Procedure* callee = program_.findProcedure(s.callee);
        if (!callee) break;
        const std::vector<VarId>& calleeMods = scalarsModifiedBy(*callee);
        const ProcSymbols& calleeSym = sema_.of(*callee);
        for (VarId v : calleeMods) {
          // Formal scalars map to scalar VarRef actuals; commons pass as-is.
          bool mapped = false;
          for (std::size_t i = 0; i < callee->params.size(); ++i) {
            auto fid = calleeSym.scalarId(callee->params[i]);
            if (fid && *fid == v) {
              mapped = true;
              if (i < s.args.size() && s.args[i]->kind == Expr::Kind::VarRef) {
                if (auto aid = sym.scalarId(s.args[i]->name)) out.push_back(*aid);
              }
              break;
            }
          }
          if (!mapped) out.push_back(v);  // common/global scalar
        }
        break;
      }
      default:
        break;
    }
    for (const StmtPtr& c : s.thenBody) visit(*c);
    for (const StmtPtr& c : s.elseBody) visit(*c);
    for (const StmtPtr& c : s.body) visit(*c);
  };
  for (const Stmt* s : stmts) visit(*s);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

const std::vector<VarId>& SummaryAnalyzer::scalarsModifiedBy(const Procedure& proc) {
  {
    std::shared_lock<std::shared_mutex> lock(scalarCacheMutex_);
    auto it = modifiedScalarCache_.find(&proc);
    if (it != modifiedScalarCache_.end()) return it->second;
  }
  // Compute unlocked (sema rejects recursion, so the transitive callee
  // lookups below terminate without a cache seed), then publish.
  std::vector<const Stmt*> roots;
  for (const StmtPtr& s : proc.body) roots.push_back(s.get());
  std::vector<VarId> all;
  collectAssignedScalars(roots, sema_.of(proc), all, /*throughCalls=*/true);
  // Only formal and common scalars escape the procedure.
  const ProcSymbols& sym = sema_.of(proc);
  std::vector<VarId> escaping;
  for (VarId v : all) {
    bool isFormal = false;
    for (const std::string& p : proc.params) {
      if (auto fid = sym.scalarId(p); fid && *fid == v) isFormal = true;
    }
    bool isLocal = sema_.symbols.name(v).starts_with(proc.name + "::");
    if (isFormal || !isLocal) escaping.push_back(v);
  }
  std::unique_lock<std::shared_mutex> lock(scalarCacheMutex_);
  return modifiedScalarCache_.emplace(&proc, std::move(escaping)).first->second;
}

// ---------------------------------------------------------------------------
// SUM_segment (§4.1): per-node summaries then backward propagation.
// ---------------------------------------------------------------------------

void SummaryAnalyzer::sumSegment(const HsgGraph& g, const ProcSymbols& sym, GarList& mod,
                                 GarList& ue, GarList* de) {
  std::vector<int> topo = g.topoOrder();
  std::map<int, NodeSets> in;

  auto simplified = [&](GarList list) {
    if (options_.garSimplifier) simplifyGarList(list, ctx_, &sema_.arrays);
    note(list);
    return list;
  };
  // The GAR-simplifier ablation: without it, unions are plain concatenation
  // and lists grow with every propagation step (§5.2's motivation).
  auto unite = [&](const GarList& a, const GarList& b) {
    if (!options_.garSimplifier) {
      GarList out = a;
      out.append(b);
      note(out);
      return out;
    }
    return garUnion(a, b, ctx_, &sema_.arrays);
  };

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const HsgNode& n = g.node(*it);

    // Merge successor in-sets (guarded per-branch at condition nodes).
    GarList modOut;
    GarList ueOut;
    GarList deOut;
    if (n.kind == HsgNode::Kind::Cond && n.succs.size() == 2 && n.succs[0] != n.succs[1]) {
      Pred c = n.cond ? lowerGuard(*n.cond, sym) : Pred::makeUnknown();
      Pred notC = !c;
      modOut = unite(in[n.succs[0]].mod.withGuard(c), in[n.succs[1]].mod.withGuard(notC));
      ueOut = unite(in[n.succs[0]].ue.withGuard(c), in[n.succs[1]].ue.withGuard(notC));
      deOut = unite(in[n.succs[0]].de.withGuard(c), in[n.succs[1]].de.withGuard(notC));
    } else {
      for (int s : n.succs) {
        modOut = unite(modOut, in[s].mod);
        ueOut = unite(ueOut, in[s].ue);
        deOut = unite(deOut, in[s].de);
      }
    }

    NodeSets sets;
    switch (n.kind) {
      case HsgNode::Kind::Entry:
      case HsgNode::Kind::Exit:
        sets.mod = std::move(modOut);
        sets.ue = std::move(ueOut);
        sets.de = std::move(deOut);
        break;
      case HsgNode::Kind::Block: {
        sets.mod = std::move(modOut);
        sets.ue = std::move(ueOut);
        sets.de = std::move(deOut);
        foldBlockBackward(n, sym, sets.mod, sets.ue,
                          options_.computeDE ? &sets.de : nullptr);
        break;
      }
      case HsgNode::Kind::Cond: {
        sets.mod = std::move(modOut);
        sets.ue = std::move(ueOut);
        sets.de = std::move(deOut);
        if (n.cond) {
          GarList uses;
          addUses(*n.cond, sym, uses);  // the condition reads arrays
          sets.ue = unite(sets.ue, uses);
          if (options_.computeDE)
            sets.de = unite(sets.de, garSubtract(uses, sets.mod, ctx_));
        }
        break;
      }
      case HsgNode::Kind::Loop:
      case HsgNode::Kind::Call:
      case HsgNode::Kind::Condensed: {
        NodeSets own = n.kind == HsgNode::Kind::Loop   ? sumLoop(n, sym)
                       : n.kind == HsgNode::Kind::Call ? sumCall(n, sym)
                                                       : sumCondensed(n, sym);
        // Scalars the compound node may write invalidate successor sets.
        std::vector<VarId> killed;
        std::vector<const Stmt*> roots;
        if (n.loopStmt) roots.push_back(n.loopStmt);
        if (n.callStmt) roots.push_back(n.callStmt);
        roots.insert(roots.end(), n.condensed.begin(), n.condensed.end());
        if (options_.quantified && n.kind == HsgNode::Kind::Loop) {
          if (const CounterIdiom* idiom = counterIdiomFor(n.loopStmt, sym)) {
            // The guarded-counter rewrite must fire before the counter is
            // poisoned as a plain loop-variant scalar.
            applyCounterRewrite(modOut, *idiom);
            applyCounterRewrite(ueOut, *idiom);
          }
        }
        collectAssignedScalars(roots, sym, killed, /*throughCalls=*/true);
        poisonScalars(modOut, killed);
        poisonScalars(ueOut, killed);
        poisonScalars(deOut, killed);
        if (n.kind == HsgNode::Kind::Loop) {
          // Record the downstream exposure for the live-out (copy-out) test.
          // Shared lock suffices: only this thread summarizes this
          // procedure, so only it writes this loop's entry.
          std::shared_lock<std::shared_mutex> lock(loopMutex_);
          auto ls = loopSummaries_.find(n.loopStmt);
          if (ls != loopSummaries_.end()) ls->second.ueAfter = ueOut;
        }
        sets.ue = unite(own.ue, garSubtract(ueOut, own.mod, ctx_));
        // The node's own uses are downward exposed only past the writes
        // that follow the node.
        if (options_.computeDE) sets.de = unite(garSubtract(own.de, modOut, ctx_), deOut);
        sets.mod = unite(own.mod, modOut);
        if (options_.quantified) {
          // Values of tested arrays are only stable up to the node that
          // writes them; quantified atoms crossing it go stale.
          std::vector<ArrayId> written = own.mod.arrays();
          taintQuantified(sets.ue, written);
          taintQuantified(sets.mod, written);
          taintQuantified(sets.de, written);
        }
        break;
      }
    }
    sets.mod = simplified(std::move(sets.mod));
    sets.ue = simplified(std::move(sets.ue));
    sets.de = simplified(std::move(sets.de));
    in[*it] = std::move(sets);
  }

  mod = std::move(in[g.entry].mod);
  ue = std::move(in[g.entry].ue);
  if (de) *de = std::move(in[g.entry].de);
}

const ProcSummary& SummaryAnalyzer::procSummary(const Procedure& proc) {
  {
    std::shared_lock<std::shared_mutex> lock(procMutex_);
    auto it = procSummaries_.find(&proc);
    if (it != procSummaries_.end()) return it->second;
  }
  // Compute unlocked. The parallel driver's wave schedule guarantees every
  // callee summary already exists, so the recursive lookups below are
  // read-only; under the serial path this is plain memoization.
  obs::Span span("summary.proc", proc.name);
  const ProcSymbols& sym = sema_.of(proc);
  GarList mod;
  GarList ue;
  GarList de;
  sumSegment(hsg_.of(proc).graph, sym, mod, ue, &de);

  ProcSummary summary;
  summary.modAll = mod;
  summary.ueAll = ue;
  // Keep only formal-array and common-array effects; drop locals.
  auto escapes = [&](ArrayId id) {
    for (const auto& [name, aid] : sym.arrayIds) {
      if (aid != id) continue;
      bool isFormal =
          std::find(proc.params.begin(), proc.params.end(), name) != proc.params.end();
      bool isLocal = sema_.arrays.name(id).starts_with(proc.name + "::");
      return isFormal || !isLocal;
    }
    return false;
  };
  for (const Gar& g : mod.gars())
    if (escapes(g.array())) summary.mod.add(g);
  for (const Gar& g : ue.gars())
    if (escapes(g.array())) summary.ue.add(g);
  for (const Gar& g : de.gars())
    if (escapes(g.array())) summary.de.add(g);

  // Local scalars remaining in the summaries denote uninitialized entry
  // values: poison them.
  std::vector<VarId> locals;
  for (const auto& [name, vid] : sym.scalars) {
    bool isFormal = std::find(proc.params.begin(), proc.params.end(), name) != proc.params.end();
    bool isLocal = sema_.symbols.name(vid).starts_with(proc.name + "::");
    if (isLocal && !isFormal) locals.push_back(vid);
  }
  poisonScalars(summary.mod, locals);
  poisonScalars(summary.ue, locals);
  poisonScalars(summary.de, locals);
  summary.modifiedScalars = scalarsModifiedBy(proc);

  std::unique_lock<std::shared_mutex> lock(procMutex_);
  return procSummaries_.emplace(&proc, std::move(summary)).first->second;
}

SummaryAnalyzer::ProcSnapshot SummaryAnalyzer::snapshotProcedure(const Procedure& proc) const {
  ProcSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(procMutex_);
    auto it = procSummaries_.find(&proc);
    if (it != procSummaries_.end()) {
      snap.summary = it->second;
      snap.hasSummary = true;
    }
  }
  {
    std::shared_lock<std::shared_mutex> lock(scalarCacheMutex_);
    auto it = modifiedScalarCache_.find(&proc);
    if (it != modifiedScalarCache_.end()) {
      snap.modifiedScalars = it->second;
      snap.hasScalars = true;
    }
  }
  std::shared_lock<std::shared_mutex> lock(loopMutex_);
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& b) {
    for (const StmtPtr& s : b) {
      if (s->kind == Stmt::Kind::Do) {
        auto it = loopSummaries_.find(s.get());
        if (it != loopSummaries_.end()) snap.loops.emplace_back(s.get(), it->second);
      }
      walk(s->thenBody);
      walk(s->elseBody);
      walk(s->body);
    }
  };
  walk(proc.body);
  return snap;
}

void SummaryAnalyzer::seedProcedure(const Procedure& proc, ProcSnapshot snapshot) {
  if (snapshot.hasSummary) {
    std::unique_lock<std::shared_mutex> lock(procMutex_);
    procSummaries_.insert_or_assign(&proc, std::move(snapshot.summary));
  }
  if (snapshot.hasScalars) {
    std::unique_lock<std::shared_mutex> lock(scalarCacheMutex_);
    modifiedScalarCache_.insert_or_assign(&proc, std::move(snapshot.modifiedScalars));
  }
  std::unique_lock<std::shared_mutex> lock(loopMutex_);
  for (auto& [stmt, ls] : snapshot.loops) loopSummaries_.insert_or_assign(stmt, std::move(ls));
}

void SummaryAnalyzer::seedLoopSummaries(std::vector<std::pair<const Stmt*, LoopSummary>> loops) {
  std::unique_lock<std::shared_mutex> lock(loopMutex_);
  for (auto& [stmt, ls] : loops) {
    ls.stmt = stmt;  // rebind to this epoch's statement object
    loopSummaries_.insert_or_assign(stmt, std::move(ls));
  }
}

std::map<std::string, std::set<std::string>> SummaryAnalyzer::callDependencies() const {
  std::shared_lock<std::shared_mutex> lock(depsMutex_);
  return callDeps_;
}

SummaryAnalyzer::NodeSets SummaryAnalyzer::sumCondensed(const HsgNode& node, const ProcSymbols& sym) {
  // §5.4: condensed backward-GOTO cycles are approximated conservatively —
  // every read is possibly exposed, every write is possible but uncertain.
  NodeSets out;
  std::function<void(const Expr&, bool)> touch = [&](const Expr& e, bool /*write*/) {
    std::function<void(const Expr&)> visit = [&](const Expr& x) {
      for (const ExprPtr& a : x.args) visit(*a);
      if (x.kind == Expr::Kind::ArrayRef) {
        auto id = sym.arrayId(x.name);
        if (id) {
          int rank = sema_.arrays.shape(*id).rank();
          out.ue.add(Gar::omega(*id, rank));
        }
      }
    };
    visit(e);
  };
  for (const Stmt* s : node.condensed) {
    if (s->kind == Stmt::Kind::Assign) {
      if (s->lhs->kind == Expr::Kind::ArrayRef) {
        if (auto id = sym.arrayId(s->lhs->name))
          out.mod.add(Gar::omega(*id, sema_.arrays.shape(*id).rank()));
        for (const ExprPtr& sub : s->lhs->args) touch(*sub, false);
      }
      touch(*s->rhs, false);
    } else if (s->kind == Stmt::Kind::Call) {
      // Ω on array args, plus — since a condensed cycle gives no usable
      // call context — Ω on every COMMON array of the program.
      for (const ExprPtr& a : s->args) {
        touch(*a, false);
        if (a->kind == Expr::Kind::VarRef) {
          if (auto id = sym.arrayId(a->name)) {
            int rank = sema_.arrays.shape(*id).rank();
            out.mod.add(Gar::omega(*id, rank));
            out.ue.add(Gar::omega(*id, rank));
          }
        }
      }
      for (std::size_t k = 0; k < sema_.arrays.size(); ++k) {
        ArrayId id{static_cast<std::uint32_t>(k)};
        if (sema_.arrays.name(id).find("::") != std::string::npos &&
            !sema_.arrays.name(id).starts_with(sym.proc->name + "::")) {
          bool isCommon = true;
          for (const Procedure& pr : program_.procedures)
            if (sema_.arrays.name(id).starts_with(pr.name + "::")) isCommon = false;
          if (isCommon) {
            out.mod.add(Gar::omega(id, sema_.arrays.shape(id).rank()));
            out.ue.add(Gar::omega(id, sema_.arrays.shape(id).rank()));
          }
        }
      }
    } else if (s->cond) {
      touch(*s->cond, false);
    }
  }
  return out;
}

}  // namespace panorama
