// SUM_bb (§4.1): folds one basic block backward through (mod, ue), killing
// uses against preceding writes and substituting scalar definitions on the
// fly — the "Step 2" note of SUM_segment made statement-precise.
#include "panorama/summary/summary.h"

namespace panorama {

void SummaryAnalyzer::foldBlockBackward(const HsgNode& block, const ProcSymbols& sym,
                                        GarList& mod, GarList& ue, GarList* de) {
  ++stats_.blockSteps;
  for (auto it = block.stmts.rbegin(); it != block.stmts.rend(); ++it) {
    const Stmt& s = **it;
    if (s.kind != Stmt::Kind::Assign) continue;  // CONTINUE/RETURN/GOTO: no data effect

    if (s.lhs->kind == Expr::Kind::ArrayRef) {
      GarList write = GarList::single(Gar::make(Pred::makeTrue(), lowerRef(*s.lhs, sym), psi_));
      ue = garSubtract(ue, write, ctx_);  // this write kills later exposure
      mod = garUnion(mod, write, ctx_, &sema_.arrays);
      GarList uses;
      addUses(*s.rhs, sym, uses);
      for (const ExprPtr& sub : s.lhs->args) addUses(*sub, sym, uses);  // subscripts read
      ue = garUnion(ue, uses, ctx_, &sema_.arrays);
      if (de) {
        // DE (§3.2.2): a use survives only past the writes that follow it —
        // which is exactly `mod` at this point (own write included, so the
        // read of A(i) = A(i)+1 is not downward exposed).
        *de = garUnion(*de, garSubtract(uses, mod, ctx_), ctx_, &sema_.arrays);
      }
      if (options_.quantified) {
        if (auto id = sym.arrayId(s.lhs->name)) {
          std::vector<ArrayId> written{*id};
          taintQuantified(ue, written);
          taintQuantified(mod, written);
          if (de) taintQuantified(*de, written);
        }
      }
      note(mod);
      note(ue);
      continue;
    }

    // Scalar assignment: v := rhs. Everything accumulated so far (which is
    // downstream of this statement) referred to v's post-assignment value;
    // rewrite it in terms of this point's state. An unlowerable RHS poisons
    // v's occurrences — degrading affected GARs to Ω/Δ, never lying.
    if (s.lhs->kind == Expr::Kind::VarRef) {
      if (auto id = sym.scalarId(s.lhs->name)) {
        SymExpr value = lowerValue(*s.rhs, sym);
        if (mod.containsVar(*id)) mod = mod.substituted(*id, value);
        if (ue.containsVar(*id)) ue = ue.substituted(*id, value);
        if (de && de->containsVar(*id)) *de = de->substituted(*id, value);
      }
      GarList uses;
      addUses(*s.rhs, sym, uses);  // RHS reads happen in the pre-assignment state
      ue = garUnion(ue, uses, ctx_, &sema_.arrays);
      if (de) *de = garUnion(*de, garSubtract(uses, mod, ctx_), ctx_, &sema_.arrays);
    }
  }
}

}  // namespace panorama
