// SUM_loop (§4.1): summarize the body once (as MOD_i / UE_i in terms of the
// index), derive MOD_{<i} and MOD_{>i} by renaming and expansion, subtract
// MOD_{<i} from UE_i, and expand everything to whole-loop sets.
#include "panorama/summary/summary.h"

#include <mutex>

#include "panorama/obs/trace.h"

namespace panorama {

namespace {

/// Context carrying lo <= i <= up (direction-normalized) for in-loop
/// reasoning, derived from `base` so the ψ binding survives. Unusable
/// pieces are simply skipped (weaker context only).
CmpCtx loopContext(const LoopBounds& b, const CmpCtx& base) {
  ConstraintSet cs;
  SymExpr I = SymExpr::variable(b.index);
  auto sc = b.step.constantValue();
  if (!sc) return base;
  if (*sc > 0) {
    cs.addExprLE0(b.lo - I);
    cs.addExprLE0(I - b.up);
  } else if (*sc < 0) {
    cs.addExprLE0(b.up - I);
    cs.addExprLE0(I - b.lo);
  }
  return base.withContext(std::move(cs));
}

}  // namespace

std::map<VarId, SymExpr> SummaryAnalyzer::recognizeInductionVars(const Stmt& loop,
                                                                 const ProcSymbols& sym,
                                                                 VarId index,
                                                                 const SymExpr& lo) {
  // Candidates: scalars with exactly one assignment in the whole body, at
  // the top level, of the shape v = v + c with c loop-invariant.
  std::map<VarId, SymExpr> out;
  std::map<std::string, int> writeCounts;
  std::function<void(const Stmt&)> count = [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::Assign && s.lhs->kind == Expr::Kind::VarRef)
      ++writeCounts[s.lhs->name];
    if (s.kind == Stmt::Kind::Do) ++writeCounts[s.doVar];
    if (s.kind == Stmt::Kind::Call) {
      // Calls may write by-ref scalars; disqualify everything they touch.
      const Procedure* callee = program_.findProcedure(s.callee);
      if (callee) {
        for (const ExprPtr& a : s.args)
          if (a->kind == Expr::Kind::VarRef && sym.isScalar(a->name))
            writeCounts[a->name] += 2;  // conservatively "more than once"
      }
    }
    for (const StmtPtr& c : s.thenBody) count(*c);
    for (const StmtPtr& c : s.elseBody) count(*c);
    for (const StmtPtr& c : s.body) count(*c);
  };
  for (const StmtPtr& c : loop.body) count(*c);

  std::vector<VarId> assigned;
  collectAssignedScalars({&loop}, sym, assigned, /*throughCalls=*/true);

  for (const StmtPtr& c : loop.body) {
    const Stmt& s = *c;
    if (s.kind != Stmt::Kind::Assign || s.lhs->kind != Expr::Kind::VarRef) continue;
    if (!sym.isScalar(s.lhs->name) || writeCounts[s.lhs->name] != 1) continue;
    auto vid = sym.scalarId(s.lhs->name);
    if (!vid || *vid == index) continue;
    const Expr& rhs = *s.rhs;
    if (rhs.kind != Expr::Kind::Binary || rhs.binOp != BinOp::Add) continue;
    const Expr* self = rhs.args[0].get();
    const Expr* incr = rhs.args[1].get();
    if (self->kind != Expr::Kind::VarRef) std::swap(self, incr);
    if (self->kind != Expr::Kind::VarRef || self->name != s.lhs->name) continue;
    SymExpr c0 = lowerValue(*incr, sym);
    if (c0.isPoisoned()) continue;
    // The increment must be loop-invariant: no index, no body-assigned vars.
    std::vector<VarId> vars;
    c0.collectVars(vars);
    bool invariant = true;
    for (VarId v : vars) {
      if (v == index) invariant = false;
      for (VarId w : assigned)
        if (w == v) invariant = false;
    }
    if (!invariant) continue;
    // v at body entry of iteration i: v_loopentry + c*(i - lo).
    SymExpr trips = SymExpr::variable(index) - lo;
    out.emplace(*vid, SymExpr::variable(*vid) + c0 * trips);
  }
  return out;
}

SummaryAnalyzer::NodeSets SummaryAnalyzer::sumLoop(const HsgNode& n, const ProcSymbols& sym) {
  const Stmt& s = *n.loopStmt;

  // Seeded fast path (seedLoopSummaries): a previous epoch already expanded
  // this statement and the session proved the expansion still valid, so the
  // stored whole-loop sets *are* this call's result. The invariant making
  // this exact: every path below stores ls.mod/ue/de equal to the NodeSets
  // it returns. ueAfter is downstream context, not subtree content — the
  // enclosing sumSegment overwrites it after this returns either way.
  {
    std::shared_lock<std::shared_mutex> lock(loopMutex_);
    if (auto it = loopSummaries_.find(&s); it != loopSummaries_.end()) {
      NodeSets out;
      out.mod = it->second.mod;
      out.ue = it->second.ue;
      out.de = it->second.de;
      return out;
    }
  }

  ++stats_.loopExpansions;
  obs::Span span("summary.loop_expansion", "DO " + s.doVar);
  if (span.active()) span.arg("line", std::to_string(s.loc.line));

  LoopSummary ls;
  ls.stmt = &s;
  ls.prematureExit = n.prematureExit;

  auto idxId = sym.scalarId(s.doVar);
  SymExpr lo = lowerValue(*s.lo, sym);
  SymExpr up = lowerValue(*s.hi, sym);
  SymExpr st = s.step ? lowerValue(*s.step, sym) : SymExpr::constant(1);
  // A poisoned *upper* bound still permits MOD_{<i}-based reasoning (its
  // window is [lo, i-st]); expansion degrades the pieces that do need `up`
  // to Δ/Ω on its own. Lower bound and step are indispensable.
  ls.boundsKnown = idxId.has_value() && !lo.isPoisoned() && !st.isPoisoned();

  GarList modI;
  GarList ueI;
  GarList deI;
  sumSegment(*n.body, sym, modI, ueI, &deI);

  // Loop-variant scalars other than the index refer to previous-iteration
  // values at body entry. Basic induction variables (§5.2: "for induction
  // variables, we first convert them to expressions of index variables")
  // rewrite exactly — a scalar v incremented once, unconditionally, by a
  // loop-invariant amount c has body-entry value v + c*(i - lo) at iteration
  // i of a unit-step loop. Everything else loop-variant poisons.
  std::vector<const Stmt*> roots{&s};
  collectAssignedScalars(roots, sym, ls.bodyAssignedScalars, /*throughCalls=*/true);
  std::map<VarId, SymExpr> induction =
      ls.boundsKnown && st == SymExpr::constant(1) && options_.symbolicAnalysis
          ? recognizeInductionVars(s, sym, *idxId, lo)
          : std::map<VarId, SymExpr>{};
  if (!induction.empty()) {
    modI = modI.substituted(induction);
    ueI = ueI.substituted(induction);
    deI = deI.substituted(induction);
  }
  std::vector<VarId> variant;
  for (VarId v : ls.bodyAssignedScalars)
    if ((!idxId || v != *idxId) && !induction.contains(v)) variant.push_back(v);
  poisonScalars(modI, variant);
  poisonScalars(ueI, variant);
  poisonScalars(deI, variant);
  if (options_.quantified && idxId) {
    // §5.3: per-iteration element conditions on the moving point become ψ1
    // dimension predicates, which expand exactly.
    psiRewrite(modI, *idxId);
    psiRewrite(ueI, *idxId);
    psiRewrite(deI, *idxId);
  }

  ls.modIter = modI;
  ls.ueIter = ueI;
  ls.deIter = deI;

  NodeSets out;
  // The loop-header expressions are evaluated (bounds may read arrays).
  addUses(*s.lo, sym, out.ue);
  addUses(*s.hi, sym, out.ue);
  if (s.step) addUses(*s.step, sym, out.ue);

  if (!ls.boundsKnown) {
    // Unknown header: every touched array degrades to Ω.
    for (const Gar& g : modI.gars())
      out.mod.add(Gar::omega(g.array(), g.region().rank()));
    for (const Gar& g : ueI.gars())
      out.ue.add(Gar::omega(g.array(), g.region().rank()));
    out.de = out.ue;
    // Keep the stored sets equal to the returned ones so the seeded fast
    // path above reproduces this result exactly. (analyzeLoop never reads
    // mod/ue/de of an unanalyzable-header loop — it bails on boundsKnown.)
    ls.mod = out.mod;
    ls.ue = out.ue;
    ls.de = out.de;
    {
      std::unique_lock<std::shared_mutex> lock(loopMutex_);
      loopSummaries_[&s] = std::move(ls);
    }
    return out;
  }

  ls.bounds = LoopBounds{*idxId, lo, up, st};
  CmpCtx inLoop = loopContext(ls.bounds, ctx_);

  // MOD_{<i} / MOD_{>i}: rename i to a fresh index and expand over the
  // prior/following iteration windows (step-aligned endpoints).
  VarId ii = sema_.symbols.fresh(s.doVar);
  GarList renamed = modI.substituted(*idxId, SymExpr::variable(ii));
  SymExpr I = SymExpr::variable(*idxId);
  ls.modBefore = expandByIndex(renamed, LoopBounds{ii, lo, I - st, st}, inLoop);
  ls.modAfter = expandByIndex(renamed, LoopBounds{ii, I + st, up, st}, inLoop);

  // ue_i_out = UE_i − MOD_{<i}; whole-loop sets by expansion. DE mirrors it
  // downward: DE(loop) = expand(DE_i − MOD_{>i}).
  GarList ueOut = garSubtract(ueI, ls.modBefore, inLoop);
  GarList ueExpanded = expandByIndex(ueOut, ls.bounds, ctx_);
  GarList modExpanded;
  if (!n.prematureExit) {
    modExpanded = expandByIndex(modI, ls.bounds, ctx_);
  } else {
    // §5.4: with a premature exit, later iterations may never start, so the
    // whole-loop MOD cannot assume the full iteration space — except for
    // loop-*invariant* exact pieces: if iteration 1 starts (lo <= up), an
    // invariant guard already decides the write (an invariant exit
    // condition is folded into the guard; a variant one poisoned it).
    // Everything else degrades to Δ. (MOD_{<i} needs no such treatment: an
    // executing iteration i certifies its predecessors ran full bodies.)
    GarList invariant;
    GarList variant;
    for (const Gar& g : modI.gars()) {
      if (g.isExact() && !g.containsVar(*idxId))
        invariant.add(g);
      else
        variant.add(g);
    }
    modExpanded = expandByIndex(invariant, ls.bounds, ctx_);
    GarList variantExpanded = expandByIndex(variant, ls.bounds, ctx_);
    modExpanded =
        garUnion(modExpanded, variantExpanded.withGuard(Pred::makeUnknown()), ctx_,
                 &sema_.arrays);
  }
  GarList deExpanded;
  if (options_.computeDE) {
    GarList deOutIter = garSubtract(deI, ls.modAfter, inLoop);
    deExpanded = expandByIndex(deOutIter, ls.bounds, ctx_);
  }
  out.mod = garUnion(out.mod, modExpanded, ctx_, &sema_.arrays);
  out.ue = garUnion(out.ue, ueExpanded, ctx_, &sema_.arrays);
  out.de = garUnion(out.de, deExpanded, ctx_, &sema_.arrays);
  ls.mod = out.mod;
  ls.ue = out.ue;
  ls.de = out.de;
  note(out.mod);
  note(out.ue);
  {
    std::unique_lock<std::shared_mutex> lock(loopMutex_);
    loopSummaries_[&s] = std::move(ls);
  }
  return out;
}

}  // namespace panorama
