// The §5.2/§5.3 quantified-guard extension — the piece of "future work" the
// paper names as the missing ingredient for Figure 1(a) / MDG's RL:
//
//   * conditions over single array elements lower to *uninterpreted*
//     ArrayPred atoms q(A[f], rhs) instead of Δ;
//   * the guarded-counter idiom (kc = 0; DO k: IF q(k) kc = kc+1) turns a
//     later (kc == 0) guard into ∀k∈[lo,up]: ¬q — exactly, since the count
//     starts at zero and only grows;
//   * per-iteration element conditions become ψ1 dimension predicates
//     (§5.3) before expansion, so "the elements of A(6:9) with ¬q" is a
//     representable region;
//   * any write to the predicate's array invalidates in-flight q atoms
//     (they describe values at their creation point only) — affected guard
//     clauses degrade to Δ, preserving soundness.
#include <functional>
#include <mutex>

#include "panorama/summary/summary.h"

namespace panorama {

namespace {

/// Relation tags for ArrayPred keys; gt/ge/ne are carried by polarity.
enum class ApRel { Lt, Le, Eq };

const char* apRelName(ApRel r) {
  switch (r) {
    case ApRel::Lt: return "ap$lt";
    case ApRel::Le: return "ap$le";
    case ApRel::Eq: return "ap$eq";
  }
  return "ap$?";
}

/// Drops every clause containing a quantified atom that `shouldTaint`
/// accepts; sets Δ when anything was dropped.
Pred taintPred(const Pred& p, const std::function<bool(const Atom&)>& shouldTaint) {
  bool changed = false;
  Pred out = p.isUnknown() ? Pred::makeUnknown() : Pred::makeTrue();
  for (const Disjunct& clause : p.clauses()) {
    bool hit = false;
    for (const Atom& a : clause.atoms)
      if (isQuantifiedKind(a.kind()) && shouldTaint(a)) hit = true;
    if (hit) {
      changed = true;
      out = out && Pred::makeUnknown();
      continue;
    }
    Pred keep = Pred::makeFalse();
    for (const Atom& a : clause.atoms) keep = keep || Pred::atom(a);
    out = out && keep;
  }
  return changed ? out : p;
}

}  // namespace

Pred SummaryAnalyzer::lowerGuardQuantified(const Expr& e, const ProcSymbols& sym) {
  switch (e.kind) {
    case Expr::Kind::Unary:
      if (e.unOp == UnOp::Not) return !lowerGuardQuantified(*e.args[0], sym);
      return Pred::makeUnknown();
    case Expr::Kind::Binary:
      switch (e.binOp) {
        case BinOp::And:
          return lowerGuardQuantified(*e.args[0], sym) &&
                 lowerGuardQuantified(*e.args[1], sym);
        case BinOp::Or:
          return lowerGuardQuantified(*e.args[0], sym) ||
                 lowerGuardQuantified(*e.args[1], sym);
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
        case BinOp::Eq:
        case BinOp::Ne: {
          // The plain fragment first (both sides scalar-lowerable).
          Pred plain = lowerCond(e, sym);
          if (!plain.isUnknown()) return plain;
          // One side a 1-D array element, the other lowerable: ArrayPred.
          const Expr* lhs = e.args[0].get();
          const Expr* rhs = e.args[1].get();
          bool flipped = false;
          if (lhs->kind != Expr::Kind::ArrayRef) {
            std::swap(lhs, rhs);
            flipped = true;
          }
          if (lhs->kind != Expr::Kind::ArrayRef || rhs->kind == Expr::Kind::ArrayRef)
            return Pred::makeUnknown();
          auto arrayId = sym.arrayId(lhs->name);
          if (!arrayId || lhs->args.size() != 1) return Pred::makeUnknown();
          SymExpr sub = lowerValue(*lhs->args[0], sym);
          SymExpr other = lowerValue(*rhs, sym);
          if (sub.isPoisoned() || other.isPoisoned()) return Pred::makeUnknown();
          // Orient: elem REL other. A flip mirrors the relation.
          BinOp op = e.binOp;
          if (flipped) {
            op = op == BinOp::Lt   ? BinOp::Gt
                 : op == BinOp::Gt ? BinOp::Lt
                 : op == BinOp::Le ? BinOp::Ge
                 : op == BinOp::Ge ? BinOp::Le
                                   : op;
          }
          ApRel rel;
          bool positive;
          switch (op) {
            case BinOp::Lt: rel = ApRel::Lt; positive = true; break;
            case BinOp::Ge: rel = ApRel::Lt; positive = false; break;
            case BinOp::Le: rel = ApRel::Le; positive = true; break;
            case BinOp::Gt: rel = ApRel::Le; positive = false; break;
            case BinOp::Eq: rel = ApRel::Eq; positive = true; break;
            default: rel = ApRel::Eq; positive = false; break;  // Ne
          }
          VarId key = sema_.symbols.intern(apRelName(rel));
          return Pred::atom(Atom::arrayPred(AtomArrayRef{arrayId->value}, key, std::move(sub),
                                            std::move(other), positive));
        }
        default:
          return lowerCond(e, sym);
      }
    default:
      return lowerCond(e, sym);
  }
}

const SummaryAnalyzer::CounterIdiom* SummaryAnalyzer::counterIdiomFor(const Stmt* loop,
                                                                      const ProcSymbols& sym) {
  // The outer map is shared across threads; a procedure's inner map is only
  // touched by the thread summarizing that procedure (std::map nodes are
  // stable, so the reference survives other procedures' insertions).
  std::map<const Stmt*, CounterIdiom>* cachePtr;
  {
    std::unique_lock<std::shared_mutex> lock(idiomMutex_);
    cachePtr = &idiomCache_[sym.proc];
  }
  auto& cache = *cachePtr;
  if (cache.empty() && sym.proc) {
    // Scan every statement list once for (counter = 0, matching DO) pairs.
    std::function<void(const std::vector<StmtPtr>&)> scan =
        [&](const std::vector<StmtPtr>& body) {
          for (std::size_t k = 0; k < body.size(); ++k) {
            const Stmt& s = *body[k];
            scan(s.thenBody);
            scan(s.elseBody);
            scan(s.body);
            if (s.kind != Stmt::Kind::Do || k == 0) continue;
            const Stmt& init = *body[k - 1];
            // `counter = 0` immediately before the loop.
            if (init.kind != Stmt::Kind::Assign || init.lhs->kind != Expr::Kind::VarRef)
              continue;
            if (init.rhs->kind != Expr::Kind::IntLit || init.rhs->intValue != 0) continue;
            auto counter = sym.scalarId(init.lhs->name);
            auto index = sym.scalarId(s.doVar);
            if (!counter || !index || sym.typeOf(init.lhs->name) != BaseType::Integer)
              continue;
            SymExpr lo = lowerValue(*s.lo, sym);
            SymExpr up = lowerValue(*s.hi, sym);
            if (lo.isPoisoned() || up.isPoisoned() || (s.step && s.step->kind != Expr::Kind::IntLit))
              continue;
            if (s.step && s.step->intValue != 1) continue;

            // Body shape: exactly one assignment to the counter, inside a
            // one-armed IF whose condition is a single ArrayPred; the tested
            // array only ever written (if at all) before the test at the
            // tested subscript; no GOTOs.
            const Stmt* guardIf = nullptr;
            bool clean = true;
            int counterWrites = 0;
            std::vector<const Stmt*> arrayWritesBefore;
            for (const StmtPtr& c : s.body) {
              if (c->kind == Stmt::Kind::Goto || c->kind == Stmt::Kind::Call ||
                  c->kind == Stmt::Kind::Do) {
                clean = false;
                break;
              }
              if (c->kind == Stmt::Kind::If) {
                if (!c->elseBody.empty() || c->thenBody.size() != 1) {
                  clean = false;
                  break;
                }
                const Stmt& inc = *c->thenBody[0];
                if (inc.kind == Stmt::Kind::Assign && inc.lhs->kind == Expr::Kind::VarRef &&
                    inc.lhs->name == init.lhs->name) {
                  ++counterWrites;
                  guardIf = c.get();
                  // counter = counter + positive constant
                  const Expr& rhsInc = *inc.rhs;
                  bool okInc = rhsInc.kind == Expr::Kind::Binary &&
                               rhsInc.binOp == BinOp::Add &&
                               rhsInc.args[0]->kind == Expr::Kind::VarRef &&
                               rhsInc.args[0]->name == init.lhs->name &&
                               rhsInc.args[1]->kind == Expr::Kind::IntLit &&
                               rhsInc.args[1]->intValue > 0;
                  if (!okInc) clean = false;
                  continue;
                }
                clean = false;  // other conditional effects: stay out
                break;
              }
              if (c->kind == Stmt::Kind::Assign) {
                if (c->lhs->kind == Expr::Kind::VarRef && c->lhs->name == init.lhs->name) {
                  clean = false;  // unguarded counter write
                  break;
                }
                if (c->lhs->kind == Expr::Kind::ArrayRef) {
                  if (guardIf) {
                    clean = false;  // write after the test: values unstable
                    break;
                  }
                  arrayWritesBefore.push_back(c.get());
                }
              }
            }
            if (!clean || counterWrites != 1 || !guardIf) continue;

            Pred cond = lowerGuardQuantified(*guardIf->cond, sym);
            if (cond.isUnknown() || cond.clauses().size() != 1 ||
                cond.clauses()[0].atoms.size() != 1)
              continue;
            const Atom& pred = cond.clauses()[0].atoms[0];
            if (pred.kind() != Atom::Kind::ArrayPred) continue;
            // Stability: writes (before the test) must hit exactly the
            // tested element.
            bool stable = true;
            for (const Stmt* w : arrayWritesBefore) {
              auto wid = sym.arrayId(w->lhs->name);
              if (!wid) continue;
              if (wid->value != pred.predArray().value) continue;
              if (w->lhs->args.size() != 1 ||
                  !(lowerValue(*w->lhs->args[0], sym) == pred.expr()))
                stable = false;
            }
            // The predicate's RHS must be loop-invariant here (not the index).
            if (pred.predRhs().containsVar(*index)) stable = false;
            if (!stable) continue;

            cache.emplace(body[k].get(),
                          CounterIdiom{*counter, *index, std::move(lo), std::move(up), pred});
          }
        };
    scan(sym.proc->body);
    // Mark the cache "scanned" even when empty (sentinel entry on nullptr).
    cache.emplace(nullptr, CounterIdiom{});
  }
  auto it = cache.find(loop);
  return it == cache.end() ? nullptr : &it->second;
}

void SummaryAnalyzer::applyCounterRewrite(GarList& list, const CounterIdiom& idiom) const {
  if (!list.containsVar(idiom.counter)) return;
  GarList out;
  SymExpr counterVar = SymExpr::variable(idiom.counter);
  for (const Gar& g : list.gars()) {
    if (!g.guard().containsVar(idiom.counter)) {
      out.add(g);
      continue;
    }
    Pred rebuilt = g.guard().isUnknown() ? Pred::makeUnknown() : Pred::makeTrue();
    for (const Disjunct& clause : g.guard().clauses()) {
      bool isCounterEq =
          clause.atoms.size() == 1 && clause.atoms[0].kind() == Atom::Kind::Rel &&
          clause.atoms[0].op() == RelOp::EQ &&
          (clause.atoms[0].expr() == counterVar || clause.atoms[0].expr() == -counterVar);
      if (isCounterEq) {
        // (kc == 0 at exit) ⟺ ∀k∈[lo,up]: ¬q — exact, given kc = 0 enters
        // the loop and increments are positive.
        const Atom& p = idiom.pred;
        rebuilt = rebuilt && Pred::atom(Atom::forallPred(
                                 p.predArray(), p.logical(), idiom.index, p.expr(), p.predRhs(),
                                 idiom.lo, idiom.up, !p.logicalValue()));
        continue;
      }
      bool mentions = false;
      for (const Atom& a : clause.atoms) mentions = mentions || a.containsVar(idiom.counter);
      if (mentions) {
        // kc ≠ 0 or anything fancier: ∃-shaped, not representable.
        rebuilt = rebuilt && Pred::makeUnknown();
        continue;
      }
      Pred keep = Pred::makeFalse();
      for (const Atom& a : clause.atoms) keep = keep || Pred::atom(a);
      rebuilt = rebuilt && keep;
    }
    out.add(Gar::make(std::move(rebuilt), g.region(), psi_));
  }
  list = std::move(out);
}

void SummaryAnalyzer::taintQuantified(GarList& list, const std::vector<ArrayId>& written) const {
  if (written.empty()) return;
  auto hit = [&](const Atom& a) {
    for (ArrayId w : written)
      if (w.value == a.predArray().value) return true;
    return false;
  };
  GarList out;
  for (const Gar& g : list.gars()) {
    Pred guard = taintPred(g.guard(), hit);
    out.add(Gar::make(std::move(guard), g.region(), psi_));
  }
  list = std::move(out);
}

void SummaryAnalyzer::taintAllQuantified(GarList& list) const {
  GarList out;
  for (const Gar& g : list.gars())
    out.add(Gar::make(taintPred(g.guard(), [](const Atom&) { return true; }), g.region(), psi_));
  list = std::move(out);
}

void SummaryAnalyzer::psiRewrite(GarList& list, VarId index) const {
  VarId psi = psi_.dim1;
  if (!psi.isValid()) return;
  GarList out;
  for (const Gar& g : list.gars()) {
    const Region& r = g.region();
    bool applicable = r.rank() == 1 && !r.dims[0].isUnknown() && r.dims[0].isPoint() &&
                      r.dims[0].lo.containsVar(index);
    if (!applicable) {
      out.add(g);
      continue;
    }
    const SymExpr& point = r.dims[0].lo;
    bool changed = false;
    Pred rebuilt = g.guard().isUnknown() ? Pred::makeUnknown() : Pred::makeTrue();
    for (const Disjunct& clause : g.guard().clauses()) {
      Pred keep = Pred::makeFalse();
      for (const Atom& a : clause.atoms) {
        if (a.kind() == Atom::Kind::ArrayPred && a.expr() == point &&
            !a.predRhs().containsVar(index)) {
          changed = true;
          keep = keep || Pred::atom(Atom::arrayPred(a.predArray(), a.logical(),
                                                    SymExpr::variable(psi), a.predRhs(),
                                                    a.logicalValue()));
        } else {
          keep = keep || Pred::atom(a);
        }
      }
      rebuilt = rebuilt && keep;
    }
    out.add(changed ? Gar::make(std::move(rebuilt), r, psi_) : g);
  }
  list = std::move(out);
}

}  // namespace panorama
