// The conventional-analysis driver: collect every array reference of a DO
// loop body, run the pairwise memory-disambiguation tests, and refuse
// anything the tests cannot see through (CALLs, non-affine subscripts,
// IF-guarded flows are all invisible to this baseline).
#include <functional>

#include "panorama/deptest/deptest.h"
#include "panorama/obs/trace.h"

namespace panorama {

namespace {

struct Ref {
  Region region;
  bool isWrite;
};

}  // namespace

ConventionalResult ConventionalAnalyzer::classifyLoop(const Stmt& doStmt,
                                                      const Procedure& proc) const {
  ConventionalResult result;
  obs::Span span("deptest.loop", proc.name + " DO " + doStmt.doVar);
  const ProcSymbols& sym = sema_.of(proc);

  auto idx = sym.scalarId(doStmt.doVar);
  SymExpr lo = lowerInt(*doStmt.lo, sym);
  SymExpr up = lowerInt(*doStmt.hi, sym);
  if (!idx || lo.isPoisoned() || up.isPoisoned()) {
    result.sawUnanalyzable = true;
    return result;
  }
  if (doStmt.step && !(lowerInt(*doStmt.step, sym) == SymExpr::constant(1)))
    result.sawUnanalyzable = true;  // stay simple: unit steps only

  std::vector<Ref> refs;
  std::set<std::string> assignedScalars;
  std::set<std::string> exposedScalars;
  std::set<std::string> definite;

  std::function<void(const Expr&)> collectReads = [&](const Expr& e) {
    for (const ExprPtr& a : e.args) collectReads(*a);
    if (e.kind == Expr::Kind::ArrayRef) {
      Region r{*sym.arrayId(e.name), {}};
      for (const ExprPtr& s : e.args) {
        SymExpr v = lowerInt(*s, sym);
        r.dims.push_back(v.isPoisoned() ? SymRange::unknown() : SymRange::point(std::move(v)));
      }
      refs.push_back({std::move(r), false});
    }
    if (e.kind == Expr::Kind::VarRef && sym.isScalar(e.name) && !definite.count(e.name) &&
        e.name != doStmt.doVar)
      exposedScalars.insert(e.name);
  };

  std::function<void(const Stmt&, bool)> walk = [&](const Stmt& s, bool topLevel) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        collectReads(*s.rhs);
        if (s.lhs->kind == Expr::Kind::ArrayRef) {
          Region r{*sym.arrayId(s.lhs->name), {}};
          for (const ExprPtr& sub : s.lhs->args) {
            collectReads(*sub);
            SymExpr v = lowerInt(*sub, sym);
            r.dims.push_back(v.isPoisoned() ? SymRange::unknown()
                                            : SymRange::point(std::move(v)));
          }
          refs.push_back({std::move(r), true});
        } else if (s.lhs->kind == Expr::Kind::VarRef && sym.isScalar(s.lhs->name)) {
          assignedScalars.insert(s.lhs->name);
          if (topLevel) definite.insert(s.lhs->name);
        }
        break;
      case Stmt::Kind::If:
        collectReads(*s.cond);
        for (const StmtPtr& c : s.thenBody) walk(*c, false);
        for (const StmtPtr& c : s.elseBody) walk(*c, false);
        break;
      case Stmt::Kind::Do:
        collectReads(*s.lo);
        collectReads(*s.hi);
        if (s.step) collectReads(*s.step);
        assignedScalars.insert(s.doVar);
        if (topLevel) definite.insert(s.doVar);
        for (const StmtPtr& c : s.body) walk(*c, false);
        break;
      case Stmt::Kind::Call:
        result.sawCall = true;
        for (const ExprPtr& a : s.args) collectReads(*a);
        break;
      case Stmt::Kind::Goto:
        result.sawUnanalyzable = true;
        break;
      default:
        break;
    }
  };
  for (const StmtPtr& s : doStmt.body) walk(*s, true);

  bool allIndependent = true;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (!refs[i].isWrite) continue;
    for (std::size_t j = 0; j < refs.size(); ++j) {
      if (i == j && refs.size() > 1) continue;
      if (!refs[i].isWrite && !refs[j].isWrite) continue;
      ++result.pairsTested;
      Truth indep = refsIndependent(refs[i].region, refs[j].region, *idx, lo, up);
      if (indep == Truth::True)
        ++result.pairsIndependent;
      else
        allIndependent = false;
    }
  }

  bool scalarsOk = true;
  for (const std::string& v : assignedScalars)
    if (v != doStmt.doVar && exposedScalars.count(v)) scalarsOk = false;

  result.parallel = allIndependent && scalarsOk && !result.sawCall && !result.sawUnanalyzable;
  return result;
}

std::vector<std::pair<const Stmt*, ConventionalResult>> ConventionalAnalyzer::classifyProgram()
    const {
  std::vector<std::pair<const Stmt*, ConventionalResult>> out;
  for (const Procedure& proc : program_.procedures) {
    std::function<void(const std::vector<StmtPtr>&)> walkTop =
        [&](const std::vector<StmtPtr>& body) {
          for (const StmtPtr& s : body) {
            if (s->kind == Stmt::Kind::Do) out.emplace_back(s.get(), classifyLoop(*s, proc));
            walkTop(s->thenBody);
            walkTop(s->elseBody);
            walkTop(s->body);
          }
        };
    walkTop(proc.body);
  }
  return out;
}

}  // namespace panorama
