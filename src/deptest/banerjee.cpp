// Banerjee's bounds test (any-direction form): f(i) - g(i') over the box
// lo <= i, i' <= up attains its extrema at corners; if 0 lies outside
// [min, max] the equation has no (real) solution and the references are
// independent in this dimension.
#include <algorithm>

#include "panorama/deptest/deptest.h"

namespace panorama {

Truth banerjeeIndependent(const SymExpr& f, const SymExpr& g, VarId index, const SymExpr& lo,
                          const SymExpr& up) {
  auto ff = AffineForm::fromExpr(f);
  auto gg = AffineForm::fromExpr(g);
  auto loC = lo.constantValue();
  auto upC = up.constantValue();
  if (!ff || !gg || !loC || !upC) return Truth::Unknown;
  if (*loC > *upC) return Truth::True;  // zero-trip loop: trivially none

  std::int64_t a = ff->coeffOf(index);
  std::int64_t b = gg->coeffOf(index);
  AffineForm rest = *ff - *gg;
  rest.extractVar(index);
  if (!rest.coeffs.empty()) return Truth::Unknown;  // uncancelled symbolics
  std::int64_t c = rest.constant;  // h = a*i - b*i' + c

  auto span = [&](std::int64_t coef) {
    std::int64_t atLo = coef * *loC;
    std::int64_t atUp = coef * *upC;
    return std::pair(std::min(atLo, atUp), std::max(atLo, atUp));
  };
  auto [aMin, aMax] = span(a);
  auto [bMin, bMax] = span(-b);
  std::int64_t hMin = aMin + bMin + c;
  std::int64_t hMax = aMax + bMax + c;
  if (0 < hMin || 0 > hMax) return Truth::True;
  return Truth::Unknown;
}

Truth refsIndependent(const Region& w, const Region& r, VarId index, const SymExpr& lo,
                      const SymExpr& up) {
  if (w.array != r.array) return Truth::True;
  if (w.rank() != r.rank()) return Truth::Unknown;
  for (int d = 0; d < w.rank(); ++d) {
    const SymRange& dw = w.dims[d];
    const SymRange& dr = r.dims[d];
    if (dw.isUnknown() || dr.isUnknown() || !dw.isPoint() || !dr.isPoint())
      return Truth::Unknown;
    // Loop-carried test: the (=) direction is not a carried dependence. If
    // the subscript pair can only collide at i = i', the dimension clears it.
    if (auto fw = AffineForm::fromExpr(dw.lo)) {
      if (auto fr = AffineForm::fromExpr(dr.lo)) {
        AffineForm diff = *fw - *fr;
        std::int64_t dcoef = diff.extractVar(index);
        if (dcoef == 0 && diff.coeffs.empty() && diff.constant == 0 &&
            fw->coeffOf(index) != 0)
          return Truth::True;  // identical moving subscripts: collide only at i = i'
      }
    }
    if (gcdIndependent(dw.lo, dr.lo, index) == Truth::True) return Truth::True;
    if (banerjeeIndependent(dw.lo, dr.lo, index, lo, up) == Truth::True) return Truth::True;
  }
  return Truth::Unknown;
}

}  // namespace panorama
