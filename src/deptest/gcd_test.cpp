// The classic GCD dependence test: a linear diophantine equation
// a1*x1 + ... + an*xn = c has integer solutions iff gcd(a1..an) divides c.
#include <numeric>

#include "panorama/deptest/deptest.h"

namespace panorama {

Truth gcdIndependent(const SymExpr& f, const SymExpr& g, VarId index) {
  auto ff = AffineForm::fromExpr(f);
  auto gg = AffineForm::fromExpr(g);
  if (!ff || !gg) return Truth::Unknown;

  // Rename the second reference's iteration: f(i) - g(i') = 0. Symbolic
  // terms common to both sides cancel; any remaining symbolic term defeats
  // the test.
  std::int64_t a = ff->coeffOf(index);
  std::int64_t b = gg->coeffOf(index);
  AffineForm rest = *ff - *gg;
  rest.extractVar(index);  // a and b are handled separately
  if (!rest.coeffs.empty()) return Truth::Unknown;
  std::int64_t c = -rest.constant;  // a*i - b*i' = c

  std::int64_t gcd = std::gcd(a, b);
  if (gcd == 0) {
    // Subscripts do not involve the index at all: same element every
    // iteration — dependent unless the constants already differ.
    return c != 0 ? Truth::True : Truth::False;
  }
  if (c % gcd != 0) return Truth::True;
  return Truth::Unknown;  // solvable over Z; dependence not excluded
}

}  // namespace panorama
