// Elimination cache behind fourierMotzkinInfeasibleMemo (see the header for
// the canonical-form and exactness story).
//
// The cache is a sharded hash-cons: the canonical word encoding of a
// (system, budget) pair is the handle, and each handle maps to the verdict
// full elimination from that system produces plus the QueryCache epoch it
// was computed under. A chain walk (query system, then each intermediate
// system) stops at the first fresh handle hit; on a terminal verdict every
// handle visited on the way is backpatched, so the whole chain answers in
// one lookup next time.
#include "panorama/predicate/fm_incremental.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "panorama/support/memo_cache.h"

namespace panorama {

namespace {

std::atomic<bool> gTierEnabled{true};

using Key = std::vector<std::uint64_t>;

struct KeyHash {
  std::size_t operator()(const Key& key) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : key) {
      h ^= w;
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Entry {
  std::uint64_t epoch = 0;
  Truth verdict = Truth::Unknown;
};

constexpr std::size_t kShards = 16;
constexpr std::size_t kShardCapacity = (std::size_t{1} << 17) / kShards;

struct Shard {
  std::mutex mutex;
  std::unordered_map<Key, Entry, KeyHash> map;
};

struct Cache {
  Shard shards[kShards];
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
};

Cache& cache() {
  static Cache c;
  return c;
}

Shard& shardFor(const Key& key) {
  return cache().shards[KeyHash{}(key) % kShards];
}

Key encode(const std::vector<AffineForm>& system, const FmBudget& budget) {
  Key key;
  std::size_t words = 3;
  for (const AffineForm& f : system) words += 2 + f.coeffs.size() * 2;
  key.reserve(words);
  key.push_back(budget.maxConstraints);
  key.push_back(budget.maxVariables);
  key.push_back(system.size());
  for (const AffineForm& f : system) {
    key.push_back(static_cast<std::uint64_t>(f.constant));
    key.push_back(f.coeffs.size());
    for (const auto& [v, coeff] : f.coeffs) {
      key.push_back(v.value);
      key.push_back(static_cast<std::uint64_t>(coeff));
    }
  }
  return key;
}

std::optional<Truth> lookup(const Key& key, std::uint64_t epoch) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.epoch != epoch) return std::nullopt;
  return it->second.verdict;
}

void store(Key key, std::uint64_t epoch, Truth verdict) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second = {epoch, verdict};
    return;
  }
  if (shard.map.size() >= kShardCapacity) {
    cache().evictions.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.map.emplace(std::move(key), Entry{epoch, verdict});
}

}  // namespace

bool queryTierEnabled() { return gTierEnabled.load(std::memory_order_relaxed); }
void setQueryTierEnabled(bool on) { gTierEnabled.store(on, std::memory_order_relaxed); }

FmCacheStats fmEliminationStats() {
  FmCacheStats out;
  Cache& c = cache();
  out.hits = c.hits.load(std::memory_order_relaxed);
  out.misses = c.misses.load(std::memory_order_relaxed);
  out.evictions = c.evictions.load(std::memory_order_relaxed);
  for (Shard& shard : c.shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.map.size();
  }
  return out;
}

void clearFmEliminationCache() {
  Cache& c = cache();
  for (Shard& shard : c.shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  c.hits.store(0, std::memory_order_relaxed);
  c.misses.store(0, std::memory_order_relaxed);
  c.evictions.store(0, std::memory_order_relaxed);
}

Truth fourierMotzkinInfeasibleMemo(std::vector<AffineForm> system, const FmBudget& budget) {
  if (auto verdict = fmdetail::screen(system)) return *verdict;
  if (fmdetail::countVars(system) > budget.maxVariables) return Truth::Unknown;

  const std::uint64_t epoch = QueryCache::global().epoch();
  Cache& c = cache();
  std::vector<Key> chain;  // handles visited before the verdict was known
  Truth verdict = Truth::False;
  fmdetail::anonymizeVars(system);
  while (!system.empty()) {
    Key key = encode(system, budget);
    if (auto hit = lookup(key, epoch)) {
      c.hits.fetch_add(1, std::memory_order_relaxed);
      verdict = *hit;
      break;
    }
    c.misses.fetch_add(1, std::memory_order_relaxed);
    chain.push_back(std::move(key));
    fmdetail::StepResult step = fmdetail::eliminateOne(std::move(system), budget);
    if (step.verdict) {
      verdict = *step.verdict;
      break;
    }
    system = std::move(step.next);
    fmdetail::anonymizeVars(system);
  }
  for (Key& key : chain) store(std::move(key), epoch, verdict);
  return verdict;
}

}  // namespace panorama
