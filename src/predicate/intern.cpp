// Atom key-tuple interning. Since the hash-consed arena refactor the
// expression and predicate keys are the arena ids themselves (see
// symbolic/arena.h for the authoritative key layout); only atoms still go
// through a tuple interner, and their key words are O(1) handle ids rather
// than deep structural encodings. Keys are allocated from exact tuples
// (never from raw hashes), so distinct atoms always receive distinct keys.
#include "panorama/predicate/intern.h"

#include <array>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace panorama {

namespace {

struct TupleHasher {
  std::size_t operator()(const std::array<std::uint64_t, 10>& words) const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : words) {
      h ^= static_cast<std::size_t>(w);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Sharded exact-tuple interner for atom keys.
class TupleInterner {
 public:
  std::uint64_t keyOf(const std::array<std::uint64_t, 10>& words) {
    const std::size_t s = TupleHasher{}(words) % kShards;
    Shard& shard = shards_[s];
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      if (auto it = shard.map.find(words); it != shard.map.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (auto it = shard.map.find(words); it != shard.map.end()) return it->second;
    std::uint64_t key = (shard.next++ << kShardBits) | static_cast<std::uint64_t>(s);
    shard.map.emplace(words, key);
    return key;
  }

 private:
  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = 1u << kShardBits;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::array<std::uint64_t, 10>, std::uint64_t, TupleHasher> map;
    std::uint64_t next = 0;
  };
  std::array<Shard, kShards> shards_;
};

TupleInterner& atomTable() {
  static TupleInterner t;
  return t;
}

}  // namespace

std::uint64_t atomKey(const Atom& a) {
  return atomTable().keyOf({static_cast<std::uint64_t>(a.kind()),
                            static_cast<std::uint64_t>(a.op()), a.expr().id(),
                            a.logical().value, a.logicalValue() ? 1u : 0u, a.predArray().value,
                            a.boundVar().value, a.predRhs().id(), a.forallLo().id(),
                            a.forallUp().id()});
}

std::uint64_t predKey(const PredRef& p) { return p.id(); }

}  // namespace panorama
