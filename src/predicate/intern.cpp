// Atom/predicate hash-consing. Keys are allocated from exact structural
// encodings (never from raw hashes), so distinct atoms/predicates always
// receive distinct keys.
#include "panorama/predicate/intern.h"

#include <array>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "panorama/symbolic/intern.h"

namespace panorama {

namespace {

struct TupleHasher {
  std::size_t operator()(const std::vector<std::uint64_t>& words) const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : words) {
      h ^= static_cast<std::size_t>(w);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// Sharded exact-tuple interner shared by the atom and predicate key maps.
class TupleInterner {
 public:
  std::uint64_t keyOf(std::vector<std::uint64_t> words) {
    const std::size_t s = TupleHasher{}(words) % kShards;
    Shard& shard = shards_[s];
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      if (auto it = shard.map.find(words); it != shard.map.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (auto it = shard.map.find(words); it != shard.map.end()) return it->second;
    std::uint64_t key = (shard.next++ << kShardBits) | static_cast<std::uint64_t>(s);
    shard.map.emplace(std::move(words), key);
    return key;
  }

 private:
  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = 1u << kShardBits;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::vector<std::uint64_t>, std::uint64_t, TupleHasher> map;
    std::uint64_t next = 0;
  };
  std::array<Shard, kShards> shards_;
};

TupleInterner& atomTable() {
  static TupleInterner t;
  return t;
}

TupleInterner& predTable() {
  static TupleInterner t;
  return t;
}

}  // namespace

std::uint64_t atomKey(const Atom& a) {
  ExprInterner& exprs = ExprInterner::global();
  std::vector<std::uint64_t> words;
  words.reserve(10);
  words.push_back(static_cast<std::uint64_t>(a.kind()));
  words.push_back(static_cast<std::uint64_t>(a.op()));
  words.push_back(exprs.keyOf(a.expr()));
  words.push_back(a.logical().value);
  words.push_back(a.logicalValue() ? 1 : 0);
  words.push_back(a.predArray().value);
  words.push_back(a.boundVar().value);
  words.push_back(exprs.keyOf(a.predRhs()));
  words.push_back(exprs.keyOf(a.forallLo()));
  words.push_back(exprs.keyOf(a.forallUp()));
  return atomTable().keyOf(std::move(words));
}

std::uint64_t predKey(const Pred& p) {
  std::vector<std::uint64_t> words;
  words.push_back(p.isUnknown() ? 1 : 0);
  words.push_back(p.clauses().size());
  for (const Disjunct& clause : p.clauses()) {
    words.push_back(clause.atoms.size());
    for (const Atom& a : clause.atoms) words.push_back(atomKey(a));
  }
  return predTable().keyOf(std::move(words));
}

}  // namespace panorama
