// The predicate simplifier (§5.2): pairwise evaluation of disjunction pairs
// and relational-expression pairs, constant folding, subsumption, and a
// bounded satisfiability check (pairwise rules first, Fourier-Motzkin over
// unit clauses second, then a shallow case split over one non-unit clause).
#include <algorithm>
#include <array>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "panorama/predicate/intern.h"
#include "panorama/predicate/predicate.h"

namespace panorama {

namespace {

/// Bounded, sharded memo for Pred::simplify: maps the interned pre-simplify
/// predicate (plus every SimplifyOptions knob) to the simplified value.
/// Keys are exact word vectors, so a memoized result is always the result a
/// cold run would produce; eviction (FIFO per shard) only forgets. Enabled
/// and sized through QueryCache::global()'s capacity, like the verdict
/// cache — configure(0) turns both off. Entries are tagged with the verdict
/// cache's epoch too, so QueryCache::bumpEpoch() invalidates both memos in
/// one O(1) step.
class SimplifyMemo {
 public:
  static SimplifyMemo& global() {
    static SimplifyMemo memo;
    return memo;
  }

  std::optional<Pred> lookup(const std::vector<std::uint64_t>& key) {
    const std::uint64_t now = QueryCache::global().epoch();
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end() && it->second.epoch == now) {
      ++shard.stats.hits;
      return it->second.value;
    }
    ++shard.stats.misses;
    return std::nullopt;
  }

  void store(std::vector<std::uint64_t> key, const Pred& value) {
    const std::size_t cap = QueryCache::global().capacity();
    if (cap == 0) return;
    const std::size_t perShard = cap / kShards > 0 ? cap / kShards : 1;
    const std::uint64_t now = QueryCache::global().epoch();
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      it->second = Entry{value, now};  // raced twin or stale entry: refresh
      return;
    }
    while (shard.map.size() >= perShard && !shard.order.empty()) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
      ++shard.stats.evictions;
    }
    shard.order.push_back(key);
    shard.map.emplace(std::move(key), Entry{value, now});
  }

  QueryCache::Stats stats() const {
    QueryCache::Stats out;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      out.hits += shard.stats.hits;
      out.misses += shard.stats.misses;
      out.evictions += shard.stats.evictions;
      out.entries += shard.map.size();
    }
    return out;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.order.clear();
      shard.stats = {};
    }
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct KeyHasher {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const {
      std::size_t h = 0xcbf29ce484222325ull;
      for (std::uint64_t w : key) {
        h ^= static_cast<std::size_t>(w);
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };
  struct Entry {
    Pred value = Pred::makeTrue();
    std::uint64_t epoch = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::vector<std::uint64_t>, Entry, KeyHasher> map;
    std::deque<std::vector<std::uint64_t>> order;
    QueryCache::Stats stats;
  };

  Shard& shardFor(const std::vector<std::uint64_t>& key) {
    return shards_[KeyHasher{}(key) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
};

}  // namespace

QueryCache::Stats simplifyMemoStats() { return SimplifyMemo::global().stats(); }

void clearSimplifyMemo() { SimplifyMemo::global().clear(); }

namespace {

/// c1 => c2 when every atom of c1 implies some atom of c2 (then any model of
/// c1 satisfies c2 as well).
bool clauseImplies(const Disjunct& c1, const Disjunct& c2, const SimplifyOptions& opts) {
  for (const Atom& a : c1.atoms) {
    bool covered = false;
    for (const Atom& b : c2.atoms) {
      if (atomImplies(a, b, opts.fmBudget) == Truth::True) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

/// Satisfiability of a CNF with a small case-split budget. Returns True when
/// provably unsatisfiable.
Truth cnfUnsat(const std::vector<Disjunct>& clauses, const SimplifyOptions& opts, int depth) {
  ConstraintSet cs;
  const Disjunct* split = nullptr;
  std::vector<const Atom*> units;
  for (const Disjunct& d : clauses) {
    if (d.isFalse()) return Truth::True;
    if (d.atoms.size() == 1) {
      units.push_back(&d.atoms[0]);
      d.atoms[0].addToConstraints(cs);  // unrepresentable atoms weaken the context
    } else if (!split || d.atoms.size() < split->atoms.size()) {
      split = &d;
    }
  }
  // Pairwise contradictions between unit facts — this is where real-valued
  // and logical-variable clashes surface (they never enter the FM system).
  for (std::size_t i = 0; i < units.size(); ++i)
    for (std::size_t j = i + 1; j < units.size(); ++j)
      if (atomsContradict(*units[i], *units[j], opts.fmBudget) == Truth::True)
        return Truth::True;
  // Quantifier instantiation with context: ∀bv∈[lo,up] (¬)q(f(bv)) clashes
  // with an opposite q(t) when lo <= solve(f(bv)=t) <= up is *entailed by
  // the other unit facts* (e.g. the ψ-range atoms attached to a region).
  for (const Atom* fa : units) {
    if (fa->kind() != Atom::Kind::Forall) continue;
    for (const Atom* ap : units) {
      if (ap->kind() != Atom::Kind::ArrayPred) continue;
      if (fa->predArray() != ap->predArray() || fa->logical() != ap->logical() ||
          fa->logicalValue() == ap->logicalValue() || !(fa->predRhs() == ap->predRhs()))
        continue;
      auto t = solveForallInstance(*fa, ap->expr());
      if (!t) continue;
      if (cs.impliesLE0(fa->forallLo() - *t, opts.fmBudget) == Truth::True &&
          cs.impliesLE0(*t - fa->forallUp(), opts.fmBudget) == Truth::True)
        return Truth::True;
    }
  }
  if (!opts.useFourierMotzkin) return Truth::Unknown;
  Truth base = cs.contradictory(opts.fmBudget);
  if (base == Truth::True) return Truth::True;
  if (!split || depth <= 0) return base == Truth::False && !split ? Truth::False : Truth::Unknown;
  // Case split: unsat iff every branch (clauses ∧ atom) is unsat.
  for (const Atom& a : split->atoms) {
    std::vector<Disjunct> branch;
    branch.reserve(clauses.size());
    for (const Disjunct& d : clauses)
      if (&d != split) branch.push_back(d);
    branch.push_back(Disjunct::single(a));
    if (cnfUnsat(branch, opts, depth - 1) != Truth::True) return Truth::Unknown;
  }
  return Truth::True;
}

}  // namespace

void PredRef::simplify(const SimplifyOptions& opts) {
  // Handles are always canonical, so a False predicate is already the single
  // empty clause — nothing to rewrite.
  if (isFalse()) return;
  if (clauses().size() > opts.maxClauses) {
    *this = makeUnknown();
    return;
  }
  if (clauses().empty()) return;  // True / Δ: nothing to do

  if (!QueryCache::global().enabled()) {
    *this = simplifyUncached(clauses(), isUnknown(), opts);
    return;
  }
  std::vector<std::uint64_t> key;
  key.reserve(6);
  key.push_back(predKey(*this));
  key.push_back(opts.maxClauses);
  key.push_back(opts.maxAtomsPerClause);
  key.push_back(opts.useFourierMotzkin ? 1 : 0);
  key.push_back(opts.fmBudget.maxConstraints);
  key.push_back(opts.fmBudget.maxVariables);
  if (auto hit = SimplifyMemo::global().lookup(key)) {
    *this = *hit;
    return;
  }
  *this = simplifyUncached(clauses(), isUnknown(), opts);
  SimplifyMemo::global().store(std::move(key), *this);
}

PredRef PredRef::simplifyUncached(std::vector<Disjunct> clauses, bool unknown,
                                  const SimplifyOptions& opts) {
  // Pass 1: constant folding and poisoned-atom quarantine, per clause.
  std::vector<Disjunct> kept;
  for (Disjunct& d : clauses) {
    Disjunct nd;
    bool clauseTrue = false;
    bool clausePoisoned = false;
    for (Atom& a : d.atoms) {
      if (a.isPoisoned()) {
        clausePoisoned = true;  // truth unknowable: clause degrades to Δ
        continue;
      }
      switch (a.constFold()) {
        case Truth::True: clauseTrue = true; break;
        case Truth::False: break;  // false atom contributes nothing
        case Truth::Unknown: nd.atoms.push_back(std::move(a)); break;
      }
      if (clauseTrue) break;
    }
    if (clauseTrue) continue;  // tautological clause: drop
    if (clausePoisoned) {
      unknown = true;  // over-approximate the clause by True, remember Δ
      continue;
    }
    if (nd.atoms.empty())  // all atoms false: whole predicate is False
      return makeRaw({Disjunct{}}, unknown);
    nd.normalize();
    kept.push_back(std::move(nd));
  }
  clauses = std::move(kept);

  // Pass 2: pairwise work inside each clause — drop atoms implied into
  // another atom (a ∨ b = b when a => b), detect tautologies (a ∨ ¬a).
  std::vector<Disjunct> kept2;
  for (Disjunct& d : clauses) {
    bool clauseTrue = false;
    std::vector<bool> dead(d.atoms.size(), false);
    for (std::size_t i = 0; i < d.atoms.size() && !clauseTrue; ++i) {
      if (dead[i]) continue;
      for (std::size_t j = 0; j < d.atoms.size(); ++j) {
        if (i == j || dead[j]) continue;
        if (atomsExhaustive(d.atoms[i], d.atoms[j], opts.fmBudget) == Truth::True) {
          clauseTrue = true;
          break;
        }
        if (atomImplies(d.atoms[i], d.atoms[j], opts.fmBudget) == Truth::True) {
          dead[i] = true;  // weaker atom j absorbs i within a disjunction
          break;
        }
      }
    }
    if (clauseTrue) continue;
    Disjunct nd;
    for (std::size_t i = 0; i < d.atoms.size(); ++i)
      if (!dead[i]) nd.atoms.push_back(std::move(d.atoms[i]));
    kept2.push_back(std::move(nd));
  }
  clauses = std::move(kept2);

  // Pass 3: unit resolution. A unit clause {a} removes any atom b with
  // a ∧ b contradictory from other clauses, and deletes clauses containing an
  // atom implied by a.
  normalizeClauses(clauses);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = 0; u < clauses.size(); ++u) {
      if (clauses[u].atoms.size() != 1) continue;
      const Atom unit = clauses[u].atoms[0];
      for (std::size_t k = 0; k < clauses.size(); ++k) {
        if (k == u) continue;
        Disjunct& d = clauses[k];
        bool clauseRedundant = false;
        std::size_t before = d.atoms.size();
        std::erase_if(d.atoms, [&](const Atom& b) {
          return atomsContradict(unit, b, opts.fmBudget) == Truth::True;
        });
        if (!(d.atoms.size() == 1 && d.atoms[0] == unit)) {
          for (const Atom& b : d.atoms) {
            if (atomImplies(unit, b, opts.fmBudget) == Truth::True) {
              clauseRedundant = true;
              break;
            }
          }
        }
        if (clauseRedundant) {
          d.atoms.clear();
          d.atoms.push_back(unit);  // degrade to a copy; dedup removes it below
          changed = true;
        } else if (d.atoms.empty()) {
          // every literal of the clause clashed with the unit: contradiction
          return makeRaw({Disjunct{}}, unknown);
        } else if (d.atoms.size() != before) {
          changed = true;
        }
      }
    }
    if (changed) normalizeClauses(clauses);
  }

  // Pass 4: clause subsumption (c1 => c2 lets us drop c2 from the
  // conjunction) — the CNF keeps the *stronger* clause.
  std::vector<bool> drop(clauses.size(), false);
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (drop[i]) continue;
    for (std::size_t j = 0; j < clauses.size(); ++j) {
      if (i == j || drop[j] || drop[i]) continue;
      if (clauseImplies(clauses[i], clauses[j], opts)) drop[j] = true;
    }
  }
  std::vector<Disjunct> kept3;
  for (std::size_t i = 0; i < clauses.size(); ++i)
    if (!drop[i]) kept3.push_back(std::move(clauses[i]));
  clauses = std::move(kept3);
  normalizeClauses(clauses);

  // Pass 5: global satisfiability of what remains.
  const bool falseNow =
      std::any_of(clauses.begin(), clauses.end(), [](const Disjunct& d) { return d.isFalse(); });
  if (falseNow || (!clauses.empty() && cnfUnsat(clauses, opts, /*depth=*/2) == Truth::True))
    return makeRaw({Disjunct{}}, false);  // False ∧ Δ = False
  return makeRaw(std::move(clauses), unknown);
}

Truth PredRef::provablyFalse(const SimplifyOptions& opts) const {
  if (isFalse()) return Truth::True;
  if (clauses().empty()) return Truth::False;  // True (possibly ∧ Δ — still satisfiable info-wise)
  Truth t = cnfUnsat(clauses(), opts, /*depth=*/2);
  if (t == Truth::True) return Truth::True;
  return t == Truth::False && !isUnknown() ? Truth::False : Truth::Unknown;
}

}  // namespace panorama
