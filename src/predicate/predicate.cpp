#include "panorama/predicate/predicate.h"

#include <algorithm>

namespace panorama {

Pred Pred::makeFalse() {
  Pred p;
  p.clauses_.push_back(Disjunct{});  // the empty disjunction
  return p;
}

Pred Pred::makeUnknown() {
  Pred p;
  p.unknown_ = true;
  return p;
}

Pred Pred::atom(Atom a) {
  if (a.isPoisoned()) return makeUnknown();
  switch (a.constFold()) {
    case Truth::True: return makeTrue();
    case Truth::False: return makeFalse();
    case Truth::Unknown: break;
  }
  Pred p;
  p.clauses_.push_back(Disjunct::single(std::move(a)));
  return p;
}

bool Pred::isFalse() const {
  // False ∧ Δ is still False, so the unknown flag does not matter here.
  for (const Disjunct& d : clauses_)
    if (d.isFalse()) return true;
  return false;
}

void Pred::markUnknownOnly() {
  clauses_.clear();
  unknown_ = true;
}

void Pred::normalize() {
  if (isFalse()) {
    clauses_.assign(1, Disjunct{});
    return;
  }
  for (Disjunct& d : clauses_) d.normalize();
  std::sort(clauses_.begin(), clauses_.end(),
            [](const Disjunct& a, const Disjunct& b) { return Disjunct::compare(a, b) < 0; });
  clauses_.erase(std::unique(clauses_.begin(), clauses_.end()), clauses_.end());
}

Pred operator&&(const Pred& a, const Pred& b) {
  if (a.isFalse() || b.isFalse()) return Pred::makeFalse();
  Pred r;
  r.clauses_ = a.clauses_;
  r.clauses_.insert(r.clauses_.end(), b.clauses_.begin(), b.clauses_.end());
  r.unknown_ = a.unknown_ || b.unknown_;
  r.normalize();
  return r;
}

Pred operator||(const Pred& a, const Pred& b) {
  if (a.isFalse()) return b;
  if (b.isFalse()) return a;
  if (a.isTrue() || b.isTrue()) {
    // True absorbs even a Δ-tainted operand: (P ∧ Δ) ∨ True = True.
    return Pred::makeTrue();
  }
  Pred r;
  r.unknown_ = a.unknown_ || b.unknown_;
  // CNF ∨ CNF: clause-pair distribution. (over-approximations stay such)
  SimplifyOptions opts;
  if (a.clauses_.size() * b.clauses_.size() > opts.maxClauses) {
    r.markUnknownOnly();
    return r;
  }
  for (const Disjunct& da : a.clauses_) {
    for (const Disjunct& db : b.clauses_) {
      Disjunct merged;
      merged.atoms = da.atoms;
      merged.atoms.insert(merged.atoms.end(), db.atoms.begin(), db.atoms.end());
      if (merged.atoms.size() > opts.maxAtomsPerClause) {
        r.markUnknownOnly();
        return r;
      }
      r.clauses_.push_back(std::move(merged));
    }
  }
  r.normalize();
  return r;
}

Pred Pred::operator!() const {
  if (isFalse()) return makeTrue();
  if (unknown_) return makeUnknown();  // ¬(P ∧ Δ) degrades to Δ
  if (clauses_.empty()) return makeFalse();
  // ¬(∧ Cj) = ∨ ¬Cj; each ¬Cj is a conjunction of negated atoms. Distribute
  // clause by clause, bounding the intermediate size.
  SimplifyOptions opts;
  std::vector<Disjunct> result;  // CNF under construction, starts as True
  for (const Disjunct& clause : clauses_) {
    // next = result ∨ (∧_k ¬atom_k): distribute each negated atom.
    std::vector<Disjunct> next;
    if (result.empty()) {
      for (const Atom& a : clause.atoms) next.push_back(Disjunct::single(a.negated()));
    } else {
      if (result.size() * clause.atoms.size() > opts.maxClauses) return makeUnknown();
      for (const Disjunct& d : result) {
        for (const Atom& a : clause.atoms) {
          Disjunct merged = d;
          merged.atoms.push_back(a.negated());
          if (merged.atoms.size() > opts.maxAtomsPerClause) return makeUnknown();
          next.push_back(std::move(merged));
        }
      }
    }
    result = std::move(next);
    if (result.size() > opts.maxClauses) return makeUnknown();
  }
  Pred p;
  p.clauses_ = std::move(result);
  p.normalize();
  p.simplify();
  return p;
}

std::optional<bool> Pred::evaluateCnf(const Binding& binding) const {
  bool sawUnknown = false;
  for (const Disjunct& d : clauses_) {
    auto v = d.evaluate(binding);
    if (!v)
      sawUnknown = true;
    else if (!*v)
      return false;
  }
  if (sawUnknown) return std::nullopt;
  return true;
}

std::optional<bool> Pred::evaluate(const Binding& binding) const {
  auto cnf = evaluateCnf(binding);
  if (cnf.has_value() && !*cnf) return false;  // False ∧ Δ = False
  if (unknown_) return std::nullopt;
  return cnf;
}

Pred Pred::substituted(VarId v, const SymExpr& replacement) const {
  Pred r;
  r.unknown_ = unknown_;
  for (const Disjunct& d : clauses_) {
    Disjunct nd;
    for (const Atom& a : d.atoms) {
      Atom na = a.substituted(v, replacement);
      if (na.isPoisoned()) return makeUnknown();
      nd.atoms.push_back(std::move(na));
    }
    r.clauses_.push_back(std::move(nd));
  }
  r.normalize();
  r.simplify();
  return r;
}

Pred Pred::substituted(const std::map<VarId, SymExpr>& replacements) const {
  Pred r;
  r.unknown_ = unknown_;
  for (const Disjunct& d : clauses_) {
    Disjunct nd;
    for (const Atom& a : d.atoms) {
      Atom na = a.substituted(replacements);
      if (na.isPoisoned()) return makeUnknown();
      nd.atoms.push_back(std::move(na));
    }
    r.clauses_.push_back(std::move(nd));
  }
  r.normalize();
  r.simplify();
  return r;
}

bool Pred::containsVar(VarId v) const {
  for (const Disjunct& d : clauses_)
    for (const Atom& a : d.atoms)
      if (a.containsVar(v)) return true;
  return false;
}

void Pred::collectVars(std::vector<VarId>& out) const {
  for (const Disjunct& d : clauses_)
    for (const Atom& a : d.atoms) a.collectVars(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

ConstraintSet Pred::unitConstraints() const {
  ConstraintSet cs;
  for (const Disjunct& d : clauses_) {
    if (d.atoms.size() != 1) continue;
    d.atoms[0].addToConstraints(cs);  // failure just weakens the context
  }
  return cs;
}

void Pred::andAtom(Atom a) {
  Pred p = Pred::atom(std::move(a));
  *this = *this && p;
}

int Pred::compare(const Pred& a, const Pred& b) {
  if (a.unknown_ != b.unknown_) return a.unknown_ ? 1 : -1;
  if (a.clauses_.size() != b.clauses_.size())
    return a.clauses_.size() < b.clauses_.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.clauses_.size(); ++i) {
    int c = Disjunct::compare(a.clauses_[i], b.clauses_[i]);
    if (c != 0) return c;
  }
  return 0;
}

std::string Pred::str(const SymbolTable& symtab) const {
  std::string out;
  if (clauses_.empty()) {
    out = unknown_ ? "" : "true";
  } else if (isFalse()) {
    return "false";
  } else {
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      if (i) out += " and ";
      out += clauses_[i].str(symtab);
    }
  }
  if (unknown_) out += out.empty() ? "DELTA" : " and DELTA";
  return out;
}

}  // namespace panorama
