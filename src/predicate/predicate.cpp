#include "panorama/predicate/predicate.h"

#include <algorithm>

#include "panorama/predicate/arena.h"

namespace panorama {

PredRef::PredRef() {
  static const detail::PredNode* trueNode =
      PredArena::global().intern({}, /*unknown=*/false).node_;
  node_ = trueNode;
}

PredRef PredRef::makeRaw(std::vector<Disjunct> clauses, bool unknown) {
  return PredArena::global().intern(std::move(clauses), unknown);
}

PredRef PredRef::makeFalse() {
  static const detail::PredNode* falseNode =
      PredArena::global().intern({Disjunct{}}, /*unknown=*/false).node_;
  return PredRef(falseNode);
}

PredRef PredRef::makeUnknown() {
  static const detail::PredNode* unknownNode =
      PredArena::global().intern({}, /*unknown=*/true).node_;
  return PredRef(unknownNode);
}

PredRef PredRef::atom(Atom a) {
  if (a.isPoisoned()) return makeUnknown();
  switch (a.constFold()) {
    case Truth::True: return makeTrue();
    case Truth::False: return makeFalse();
    case Truth::Unknown: break;
  }
  return makeRaw({Disjunct::single(std::move(a))}, false);
}

bool PredRef::isFalse() const {
  // False ∧ Δ is still False, so the unknown flag does not matter here.
  for (const Disjunct& d : node_->clauses)
    if (d.isFalse()) return true;
  return false;
}

void PredRef::normalizeClauses(std::vector<Disjunct>& clauses) {
  for (const Disjunct& d : clauses) {
    if (d.isFalse()) {
      clauses.assign(1, Disjunct{});
      return;
    }
  }
  for (Disjunct& d : clauses) d.normalize();
  std::sort(clauses.begin(), clauses.end(),
            [](const Disjunct& a, const Disjunct& b) { return Disjunct::compare(a, b) < 0; });
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
}

PredRef PredRef::make(std::vector<Disjunct> clauses, bool unknown) {
  normalizeClauses(clauses);
  return makeRaw(std::move(clauses), unknown);
}

PredRef operator&&(const PredRef& a, const PredRef& b) {
  if (a.isFalse() || b.isFalse()) return PredRef::makeFalse();
  if (a.isTrue()) return b;  // conjunction with True is identity
  if (b.isTrue()) return a;
  std::vector<Disjunct> clauses = a.node_->clauses;
  clauses.insert(clauses.end(), b.node_->clauses.begin(), b.node_->clauses.end());
  return PredRef::make(std::move(clauses), a.node_->unknown || b.node_->unknown);
}

PredRef operator||(const PredRef& a, const PredRef& b) {
  if (a.isFalse()) return b;
  if (b.isFalse()) return a;
  if (a.isTrue() || b.isTrue()) {
    // True absorbs even a Δ-tainted operand: (P ∧ Δ) ∨ True = True.
    return PredRef::makeTrue();
  }
  const bool unknown = a.node_->unknown || b.node_->unknown;
  // CNF ∨ CNF: clause-pair distribution. (over-approximations stay such)
  SimplifyOptions opts;
  if (a.node_->clauses.size() * b.node_->clauses.size() > opts.maxClauses)
    return PredRef::makeUnknown();
  std::vector<Disjunct> clauses;
  for (const Disjunct& da : a.node_->clauses) {
    for (const Disjunct& db : b.node_->clauses) {
      Disjunct merged;
      merged.atoms = da.atoms;
      merged.atoms.insert(merged.atoms.end(), db.atoms.begin(), db.atoms.end());
      if (merged.atoms.size() > opts.maxAtomsPerClause) return PredRef::makeUnknown();
      clauses.push_back(std::move(merged));
    }
  }
  return PredRef::make(std::move(clauses), unknown);
}

PredRef PredRef::operator!() const {
  if (isFalse()) return makeTrue();
  if (node_->unknown) return makeUnknown();  // ¬(P ∧ Δ) degrades to Δ
  if (node_->clauses.empty()) return makeFalse();
  // ¬(∧ Cj) = ∨ ¬Cj; each ¬Cj is a conjunction of negated atoms. Distribute
  // clause by clause, bounding the intermediate size.
  SimplifyOptions opts;
  std::vector<Disjunct> result;  // CNF under construction, starts as True
  for (const Disjunct& clause : node_->clauses) {
    // next = result ∨ (∧_k ¬atom_k): distribute each negated atom.
    std::vector<Disjunct> next;
    if (result.empty()) {
      for (const Atom& a : clause.atoms) next.push_back(Disjunct::single(a.negated()));
    } else {
      if (result.size() * clause.atoms.size() > opts.maxClauses) return makeUnknown();
      for (const Disjunct& d : result) {
        for (const Atom& a : clause.atoms) {
          Disjunct merged = d;
          merged.atoms.push_back(a.negated());
          if (merged.atoms.size() > opts.maxAtomsPerClause) return makeUnknown();
          next.push_back(std::move(merged));
        }
      }
    }
    result = std::move(next);
    if (result.size() > opts.maxClauses) return makeUnknown();
  }
  PredRef p = make(std::move(result), false);
  p.simplify();
  return p;
}

std::optional<bool> PredRef::evaluateCnf(const Binding& binding) const {
  bool sawUnknown = false;
  for (const Disjunct& d : node_->clauses) {
    auto v = d.evaluate(binding);
    if (!v)
      sawUnknown = true;
    else if (!*v)
      return false;
  }
  if (sawUnknown) return std::nullopt;
  return true;
}

std::optional<bool> PredRef::evaluate(const Binding& binding) const {
  auto cnf = evaluateCnf(binding);
  if (cnf.has_value() && !*cnf) return false;  // False ∧ Δ = False
  if (node_->unknown) return std::nullopt;
  return cnf;
}

PredRef PredRef::substituted(VarId v, const ExprRef& replacement) const {
  std::vector<Disjunct> clauses;
  clauses.reserve(node_->clauses.size());
  for (const Disjunct& d : node_->clauses) {
    Disjunct nd;
    for (const Atom& a : d.atoms) {
      Atom na = a.substituted(v, replacement);
      if (na.isPoisoned()) return makeUnknown();
      nd.atoms.push_back(std::move(na));
    }
    clauses.push_back(std::move(nd));
  }
  PredRef r = make(std::move(clauses), node_->unknown);
  r.simplify();
  return r;
}

PredRef PredRef::substituted(const std::map<VarId, ExprRef>& replacements) const {
  std::vector<Disjunct> clauses;
  clauses.reserve(node_->clauses.size());
  for (const Disjunct& d : node_->clauses) {
    Disjunct nd;
    for (const Atom& a : d.atoms) {
      Atom na = a.substituted(replacements);
      if (na.isPoisoned()) return makeUnknown();
      nd.atoms.push_back(std::move(na));
    }
    clauses.push_back(std::move(nd));
  }
  PredRef r = make(std::move(clauses), node_->unknown);
  r.simplify();
  return r;
}

bool PredRef::containsVar(VarId v) const {
  for (const Disjunct& d : node_->clauses)
    for (const Atom& a : d.atoms)
      if (a.containsVar(v)) return true;
  return false;
}

void PredRef::collectVars(std::vector<VarId>& out) const {
  for (const Disjunct& d : node_->clauses)
    for (const Atom& a : d.atoms) a.collectVars(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

ConstraintSet PredRef::unitConstraints() const {
  ConstraintSet cs;
  for (const Disjunct& d : node_->clauses) {
    if (d.atoms.size() != 1) continue;
    d.atoms[0].addToConstraints(cs);  // failure just weakens the context
  }
  return cs;
}

void PredRef::andAtom(Atom a) {
  PredRef p = PredRef::atom(std::move(a));
  *this = *this && p;
}

int PredRef::compare(const PredRef& a, const PredRef& b) {
  if (a.node_ == b.node_) return 0;  // hash-consing: one node per value
  if (a.node_->unknown != b.node_->unknown) return a.node_->unknown ? 1 : -1;
  const std::vector<Disjunct>& ca = a.node_->clauses;
  const std::vector<Disjunct>& cb = b.node_->clauses;
  if (ca.size() != cb.size()) return ca.size() < cb.size() ? -1 : 1;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    int c = Disjunct::compare(ca[i], cb[i]);
    if (c != 0) return c;
  }
  return 0;
}

std::string PredRef::str(const SymbolTable& symtab) const {
  std::string out;
  if (node_->clauses.empty()) {
    out = node_->unknown ? "" : "true";
  } else if (isFalse()) {
    return "false";
  } else {
    for (std::size_t i = 0; i < node_->clauses.size(); ++i) {
      if (i) out += " and ";
      out += node_->clauses[i].str(symtab);
    }
  }
  if (node_->unknown) out += out.empty() ? "DELTA" : " and DELTA";
  return out;
}

}  // namespace panorama
