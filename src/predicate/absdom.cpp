// Interval/congruence pre-filter (see absdom.h for the discharge contract).
//
// Soundness shape: precision bugs here cannot change verdicts. True/Unknown
// only come from exact mirrors of the classic engine's screening, and False
// only comes from a witness that exact 128-bit substitution has verified
// against every constraint. The interval fixpoint and the greedy assignment
// order are merely heuristics that decide *whether* a witness is found; a
// missed witness declines to the precise engine.
#include "panorama/predicate/absdom.h"

#include <algorithm>
#include <numeric>

namespace panorama::absdom {

namespace {

using Int128 = __int128;

// Accumulator guard: products of int64s stay below 2^126; keeping every
// intermediate below 2^120 makes each further addition overflow-free.
const Int128 kGuard = Int128(1) << 120;

bool guarded(Int128 v) { return v > -kGuard && v < kGuard; }

constexpr std::size_t kMaxRounds = 6;

struct VarSlot {
  VarId var;
  Interval itv;
};

std::size_t slotOf(const std::vector<VarSlot>& slots, VarId v) {
  auto it = std::lower_bound(slots.begin(), slots.end(), v,
                             [](const VarSlot& s, VarId x) { return s.var < x; });
  return static_cast<std::size_t>(it - slots.begin());
}

/// Refines every variable of `form <= 0` once; returns false when a derived
/// bound proves the interval store empty beyond int64 representation.
bool refineLE(const AffineForm& form, std::vector<VarSlot>& slots, bool& changed) {
  for (const auto& [v, a] : form.coeffs) {
    // a*v <= -constant - min(sum of the other terms)
    Int128 bound = -Int128(form.constant);
    bool unbounded = false;
    for (const auto& [u, au] : form.coeffs) {
      if (u == v) continue;
      const Interval& iu = slots[slotOf(slots, u)].itv;
      if (au > 0) {
        if (iu.loInf) {
          unbounded = true;
          break;
        }
        bound -= Int128(au) * iu.lo;
      } else {
        if (iu.hiInf) {
          unbounded = true;
          break;
        }
        bound -= Int128(au) * iu.hi;
      }
      if (!guarded(bound)) {
        unbounded = true;
        break;
      }
    }
    if (unbounded) continue;
    Interval& iv = slots[slotOf(slots, v)].itv;
    if (a > 0) {
      Int128 q = bound / a;  // floor(bound / a), a > 0
      if ((bound % a != 0) && bound < 0) --q;
      if (q < INT64_MIN) return false;  // v <= something below int64: no witness
      if (q <= INT64_MAX) changed |= iv.clampHi(static_cast<std::int64_t>(q));
    } else {
      Int128 q = bound / a;  // ceil(bound / a), a < 0
      if ((bound % a != 0) && ((bound < 0) == (a < 0))) ++q;
      if (q > INT64_MAX) return false;  // v >= something above int64: no witness
      if (q >= INT64_MIN) changed |= iv.clampLo(static_cast<std::int64_t>(q));
    }
  }
  return true;
}

bool constantViolated(ConstraintKind kind, Int128 c) {
  switch (kind) {
    case ConstraintKind::LE0: return c > 0;
    case ConstraintKind::EQ0: return c != 0;
    case ConstraintKind::NE0: return c == 0;
  }
  return true;
}

/// Substitutes v := value into every form, folding the term into the
/// constant; false when a folded constant leaves int64 (no witness along
/// this branch is representable) or a now-constant form is violated.
bool substitute(std::vector<LinearConstraint>& forms, VarId v, std::int64_t value) {
  for (LinearConstraint& f : forms) {
    auto& coeffs = f.form.coeffs;
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      if (coeffs[k].first != v) continue;
      Int128 folded = Int128(f.form.constant) + Int128(coeffs[k].second) * value;
      if (folded < INT64_MIN || folded > INT64_MAX) return false;
      f.form.constant = static_cast<std::int64_t>(folded);
      coeffs.erase(coeffs.begin() + static_cast<std::ptrdiff_t>(k));
      break;
    }
    if (coeffs.empty() && constantViolated(f.kind, Int128(f.form.constant))) return false;
  }
  return true;
}

}  // namespace

bool Interval::clampHi(std::int64_t bound) {
  if (!hiInf && hi <= bound) return false;
  hi = bound;
  hiInf = false;
  return true;
}

bool Interval::clampLo(std::int64_t bound) {
  if (!loInf && lo >= bound) return false;
  lo = bound;
  loInf = false;
  return true;
}

std::vector<std::pair<VarId, Interval>> intervalFixpoint(
    const std::vector<LinearConstraint>& constraints) {
  std::vector<VarSlot> slots;
  for (const LinearConstraint& c : constraints)
    for (const auto& [v, coeff] : c.form.coeffs) {
      std::size_t at = slotOf(slots, v);
      if (at == slots.size() || slots[at].var != v)
        slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(at), {v, Interval::top()});
    }

  bool representable = true;
  for (std::size_t round = 0; round < kMaxRounds && representable; ++round) {
    bool changed = false;
    for (const LinearConstraint& c : constraints) {
      if (c.kind == ConstraintKind::NE0) continue;
      if (!refineLE(c.form, slots, changed)) {
        representable = false;
        break;
      }
      if (c.kind == ConstraintKind::EQ0 && !refineLE(c.form.scaled(-1), slots, changed)) {
        representable = false;
        break;
      }
    }
    if (!changed) break;
  }
  std::vector<std::pair<VarId, Interval>> out;
  out.reserve(slots.size());
  for (const VarSlot& s : slots) out.emplace_back(s.var, s.itv);
  if (!representable && !out.empty()) {
    // A bound escaped int64 in the emptying direction: poison the store so
    // the caller declines (no int64 witness can exist).
    out.front().second = Interval{1, 0, false, false};
  }
  return out;
}

std::optional<Truth> tryDischarge(const std::vector<LinearConstraint>& constraints,
                                  const FmBudget& budget) {
  // Screen 1 — overflow poison: exact mirror of the classic engine, which
  // answers Unknown before anything else when any form carries the bit.
  for (const LinearConstraint& c : constraints)
    if (c.form.overflow) return Truth::Unknown;

  // Screen 2 — all-constant system: exact mirror of the classic screen
  // (violated constant => True, otherwise the empty elimination => False).
  bool allConstant = true;
  for (const LinearConstraint& c : constraints)
    if (!c.form.isConstant()) {
      allConstant = false;
      break;
    }
  if (allConstant) {
    for (const LinearConstraint& c : constraints)
      if (constantViolated(c.kind, Int128(c.form.constant))) return Truth::True;
    return Truth::False;
  }

  // From here on only a verified witness (=> False) may discharge; any True
  // verdict belongs to the precise engine.
  if (constraints.size() > budget.maxConstraints) return std::nullopt;

  // Congruence screen: an equality whose coefficient gcd does not divide
  // the constant has no integer solution, so no witness exists — decline
  // and let the tightening in the precise engine produce the verdict.
  for (const LinearConstraint& c : constraints) {
    if (c.kind != ConstraintKind::EQ0 || c.form.coeffs.empty()) continue;
    std::int64_t g = 0;
    for (const auto& [v, a] : c.form.coeffs) g = std::gcd(g, a < 0 ? -a : a);
    if (g > 1 && (c.form.constant % g) != 0) return std::nullopt;
  }

  std::vector<std::pair<VarId, Interval>> intervals = intervalFixpoint(constraints);
  const std::size_t varCount = intervals.size();
  if (varCount > budget.maxVariables) return std::nullopt;

  // Greedy witness search in ascending variable order: pinned equality
  // value first, then the interval ends and zero, each candidate checked by
  // exact substitution into a working copy. Intervals are recomputed from
  // the reduced system before every choice, so earlier assignments steer
  // later candidates (1 <= i <= n first pins i = 1, then bounds n). No
  // backtracking — a dead end declines to the precise engine.
  std::vector<LinearConstraint> working = constraints;
  std::vector<std::pair<VarId, std::int64_t>> assignment;
  assignment.reserve(varCount);

  for (std::size_t round = 0; round < varCount; ++round) {
    for (const auto& [v, itv] : intervals)
      if (itv.empty()) return std::nullopt;

    // The fixpoint only covers variables still present in the working
    // system; assigned (and vanished) variables are gone from it.
    if (intervals.empty()) break;
    const auto [v, itv] = intervals.front();

    std::int64_t pinned = 0;
    bool hasPinned = false;
    for (const LinearConstraint& f : working) {
      if (f.kind != ConstraintKind::EQ0 || f.form.coeffs.size() != 1 ||
          f.form.coeffs[0].first != v)
        continue;
      const std::int64_t a = f.form.coeffs[0].second;
      if (f.form.constant % a != 0) return std::nullopt;  // no integer value fits
      pinned = -(f.form.constant / a);
      hasPinned = true;
      break;
    }

    std::int64_t candidates[4];
    std::size_t n = 0;
    if (hasPinned) {
      candidates[n++] = pinned;
    } else if (!itv.loInf && !itv.hiInf && itv.lo == itv.hi) {
      candidates[n++] = itv.lo;
    } else {
      if (!itv.loInf) candidates[n++] = itv.lo;
      if (itv.contains(0)) candidates[n++] = 0;
      if (!itv.hiInf) candidates[n++] = itv.hi;
      if (n == 0) candidates[n++] = 0;
      // Disequalities are invisible to the interval store, so every bound
      // candidate can land exactly on a `v != c` value; keep one nudged
      // fallback (lo+1, or 1 for an unbounded-below interval) in reserve.
      const std::int64_t nudge = !itv.loInf && itv.lo < INT64_MAX ? itv.lo + 1 : 1;
      if (itv.contains(nudge)) candidates[n++] = nudge;
    }

    bool assigned = false;
    for (std::size_t k = 0; k < n && !assigned; ++k) {
      if (k > 0 && candidates[k] == candidates[k - 1]) continue;
      std::vector<LinearConstraint> trial = working;
      if (substitute(trial, v, candidates[k])) {
        working = std::move(trial);
        assignment.emplace_back(v, candidates[k]);
        assigned = true;
      }
    }
    if (!assigned) return std::nullopt;
    intervals = intervalFixpoint(working);
  }

  if (assignment.size() != varCount) return std::nullopt;

  // Exact verification against the *original* constraints: evaluate every
  // form at the assignment in 128-bit. The working copies above only steer
  // the search; this check alone justifies the False verdict.
  for (const LinearConstraint& c : constraints) {
    Int128 acc = c.form.constant;
    for (const auto& [v, a] : c.form.coeffs) {
      auto it = std::lower_bound(
          assignment.begin(), assignment.end(), v,
          [](const std::pair<VarId, std::int64_t>& p, VarId x) { return p.first < x; });
      if (it == assignment.end() || it->first != v) return std::nullopt;
      acc += Int128(a) * it->second;
      if (!guarded(acc)) return std::nullopt;
    }
    if (constantViolated(c.kind, acc)) return std::nullopt;
  }
  return Truth::False;
}

}  // namespace panorama::absdom
