#include "panorama/predicate/atom.h"

#include <algorithm>

#include "panorama/predicate/intern.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

Atom Atom::rel(SymExpr e, RelOp op) {
  Atom a;
  a.kind_ = Kind::Rel;
  a.expr_ = std::move(e);
  a.op_ = op;
  // Canonicalize EQ/NE signs: e == 0 and -e == 0 coincide; pick the variant
  // whose expression compares smaller so structural equality catches both.
  if (a.op_ == RelOp::EQ || a.op_ == RelOp::NE || a.op_ == RelOp::REQ ||
      a.op_ == RelOp::RNE) {
    SymExpr neg = -a.expr_;
    if (SymExpr::compare(neg, a.expr_) < 0) a.expr_ = std::move(neg);
  } else if (a.op_ == RelOp::LE && a.expr_.isAffine()) {
    // Integer tightening keeps LE atoms canonical: 2x-1<=0 and x<=0 unify.
    auto f = AffineForm::fromExpr(a.expr_);
    if (f) {
      f->tightenLE();
      if (!f->overflow) a.expr_ = f->toExpr();
    }
  }
  return a;
}

Atom Atom::logicalVar(VarId v, bool value) {
  Atom a;
  a.kind_ = Kind::LogVar;
  a.lvar_ = v;
  a.lval_ = value;
  return a;
}

Atom Atom::arrayPred(AtomArrayRef array, VarId predKey, SymExpr subscript, SymExpr rhs,
                     bool positive) {
  Atom a;
  a.kind_ = Kind::ArrayPred;
  a.apArray_ = array;
  a.lvar_ = predKey;
  a.expr_ = std::move(subscript);
  a.apRhs_ = std::move(rhs);
  a.lval_ = positive;
  return a;
}

Atom Atom::forallPred(AtomArrayRef array, VarId predKey, VarId boundVar, SymExpr subscript,
                      SymExpr rhs, SymExpr lo, SymExpr up, bool positive) {
  Atom a;
  a.kind_ = Kind::Forall;
  a.apArray_ = array;
  a.lvar_ = predKey;
  a.apBound_ = boundVar;
  a.expr_ = std::move(subscript);
  a.apRhs_ = std::move(rhs);
  a.apLo_ = std::move(lo);
  a.apUp_ = std::move(up);
  a.lval_ = positive;
  return a;
}

Atom Atom::negated() const {
  if (kind_ == Kind::LogVar) return logicalVar(lvar_, !lval_);
  if (kind_ == Kind::ArrayPred) return arrayPred(apArray_, lvar_, expr_, apRhs_, !lval_);
  if (kind_ == Kind::Forall) {
    // ¬∀ is ∃ — not representable; callers must treat this atom as Δ.
    // Return a poisoned relational atom so the predicate layer degrades.
    return rel(SymExpr::poisoned(), RelOp::LE);
  }
  switch (op_) {
    case RelOp::LE:  // not(e <= 0)  ==  e >= 1  ==  -e + 1 <= 0 (integers)
      return rel(-expr_ + 1, RelOp::LE);
    case RelOp::EQ:
      return rel(expr_, RelOp::NE);
    case RelOp::NE:
      return rel(expr_, RelOp::EQ);
    case RelOp::RLT:  // not(e < 0)  ==  -e <= 0
      return rel(-expr_, RelOp::RLE);
    case RelOp::RLE:  // not(e <= 0)  ==  -e < 0
      return rel(-expr_, RelOp::RLT);
    case RelOp::REQ:
      return rel(expr_, RelOp::RNE);
    case RelOp::RNE:
      return rel(expr_, RelOp::REQ);
  }
  return *this;  // unreachable
}

Truth Atom::constFold() const {
  if (kind_ != Kind::Rel) return Truth::Unknown;
  auto c = expr_.constantValue();
  if (!c) return Truth::Unknown;
  bool holds = false;
  switch (op_) {
    case RelOp::LE: holds = *c <= 0; break;
    case RelOp::EQ: holds = *c == 0; break;
    case RelOp::NE: holds = *c != 0; break;
    case RelOp::RLT: holds = *c < 0; break;
    case RelOp::RLE: holds = *c <= 0; break;
    case RelOp::REQ: holds = *c == 0; break;
    case RelOp::RNE: holds = *c != 0; break;
  }
  return holds ? Truth::True : Truth::False;
}

std::optional<bool> Atom::evaluate(const Binding& binding) const {
  if (kind_ == Kind::ArrayPred || kind_ == Kind::Forall)
    return std::nullopt;  // uninterpreted: no concrete semantics here
  if (kind_ == Kind::LogVar) {
    auto it = binding.find(lvar_);
    if (it == binding.end()) return std::nullopt;
    return (it->second != 0) == lval_;
  }
  auto v = expr_.evaluate(binding);
  if (!v) return std::nullopt;
  switch (op_) {
    case RelOp::LE: return *v <= 0;
    case RelOp::EQ: return *v == 0;
    case RelOp::NE: return *v != 0;
    case RelOp::RLT: return *v < 0;
    case RelOp::RLE: return *v <= 0;
    case RelOp::REQ: return *v == 0;
    case RelOp::RNE: return *v != 0;
  }
  return std::nullopt;  // unreachable
}

Atom Atom::substituted(VarId v, const SymExpr& replacement) const {
  if (kind_ == Kind::LogVar) return *this;
  if (kind_ == Kind::ArrayPred)
    return arrayPred(apArray_, lvar_, expr_.substitute(v, replacement),
                     apRhs_.substitute(v, replacement), lval_);
  if (kind_ == Kind::Forall) {
    if (v == apBound_) return *this;  // bound variable shadows
    return forallPred(apArray_, lvar_, apBound_, expr_.substitute(v, replacement),
                      apRhs_.substitute(v, replacement), apLo_.substitute(v, replacement),
                      apUp_.substitute(v, replacement), lval_);
  }
  return rel(expr_.substitute(v, replacement), op_);
}

Atom Atom::substituted(const std::map<VarId, SymExpr>& replacements) const {
  if (kind_ == Kind::LogVar) return *this;
  if (kind_ == Kind::ArrayPred)
    return arrayPred(apArray_, lvar_, expr_.substitute(replacements),
                     apRhs_.substitute(replacements), lval_);
  if (kind_ == Kind::Forall) {
    std::map<VarId, SymExpr> scoped = replacements;
    scoped.erase(apBound_);
    return forallPred(apArray_, lvar_, apBound_, expr_.substitute(scoped),
                      apRhs_.substitute(scoped), apLo_.substitute(scoped),
                      apUp_.substitute(scoped), lval_);
  }
  return rel(expr_.substitute(replacements), op_);
}

bool Atom::containsVar(VarId v) const {
  if (kind_ == Kind::LogVar) return lvar_ == v;
  if (kind_ == Kind::ArrayPred) return expr_.containsVar(v) || apRhs_.containsVar(v);
  if (kind_ == Kind::Forall) {
    if (v == apBound_) return false;  // bound
    return expr_.containsVar(v) || apRhs_.containsVar(v) || apLo_.containsVar(v) ||
           apUp_.containsVar(v);
  }
  return expr_.containsVar(v);
}

void Atom::collectVars(std::vector<VarId>& out) const {
  if (kind_ == Kind::LogVar) {
    out.push_back(lvar_);
  } else if (kind_ == Kind::Forall) {
    std::vector<VarId> inner;
    expr_.collectVars(inner);
    apRhs_.collectVars(inner);
    apLo_.collectVars(inner);
    apUp_.collectVars(inner);
    for (VarId v : inner)
      if (v != apBound_) out.push_back(v);
  } else if (kind_ == Kind::ArrayPred) {
    expr_.collectVars(out);
    apRhs_.collectVars(out);
  } else {
    expr_.collectVars(out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

int Atom::compare(const Atom& a, const Atom& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_ ? -1 : 1;
  if (a.kind_ == Kind::LogVar) {
    if (a.lvar_ != b.lvar_) return a.lvar_ < b.lvar_ ? -1 : 1;
    if (a.lval_ != b.lval_) return a.lval_ < b.lval_ ? -1 : 1;
    return 0;
  }
  if (a.kind_ == Kind::ArrayPred || a.kind_ == Kind::Forall) {
    if (a.apArray_ != b.apArray_) return a.apArray_ < b.apArray_ ? -1 : 1;
    if (a.lvar_ != b.lvar_) return a.lvar_ < b.lvar_ ? -1 : 1;
    if (a.lval_ != b.lval_) return a.lval_ < b.lval_ ? -1 : 1;
    if (int c = SymExpr::compare(a.expr_, b.expr_)) return c;
    if (int c = SymExpr::compare(a.apRhs_, b.apRhs_)) return c;
    if (a.kind_ == Kind::Forall) {
      if (a.apBound_ != b.apBound_) return a.apBound_ < b.apBound_ ? -1 : 1;
      if (int c = SymExpr::compare(a.apLo_, b.apLo_)) return c;
      if (int c = SymExpr::compare(a.apUp_, b.apUp_)) return c;
    }
    return 0;
  }
  if (a.op_ != b.op_) return a.op_ < b.op_ ? -1 : 1;
  return SymExpr::compare(a.expr_, b.expr_);
}

std::size_t Atom::hashValue() const {
  std::size_t h = static_cast<std::size_t>(kind_) * 131 + static_cast<std::size_t>(op_);
  h = h * 131 + static_cast<std::size_t>(expr_.id());
  h = h * 131 + lvar_.value;
  h = h * 131 + (lval_ ? 1u : 0u);
  h = h * 131 + apArray_.value;
  h = h * 131 + apBound_.value;
  h = h * 131 + static_cast<std::size_t>(apRhs_.id());
  h = h * 131 + static_cast<std::size_t>(apLo_.id());
  h = h * 131 + static_cast<std::size_t>(apUp_.id());
  return h;
}

bool Atom::addToConstraints(ConstraintSet& cs) const {
  if (kind_ == Kind::ArrayPred || kind_ == Kind::Forall) return false;  // uninterpreted
  if (kind_ == Kind::LogVar) {
    // Encode v == lval with v constrained to {0, 1}.
    SymExpr v = SymExpr::variable(lvar_);
    bool ok = cs.addExprEQ0(v - SymExpr::constant(lval_ ? 1 : 0));
    ok = ok && cs.addExprLE0(-v);                       // v >= 0
    ok = ok && cs.addExprLE0(v - SymExpr::constant(1));  // v <= 1
    return ok;
  }
  switch (op_) {
    case RelOp::LE: return cs.addExprLE0(expr_);
    case RelOp::EQ: return cs.addExprEQ0(expr_);
    case RelOp::NE: return cs.addExprNE0(expr_);
    case RelOp::RLT:
    case RelOp::RLE:
    case RelOp::REQ:
    case RelOp::RNE:
      // Real-valued facts never enter the integer constraint engine
      // (tightening would be unsound); dropping a hypothesis only weakens.
      return false;
  }
  return false;  // unreachable
}

std::string Atom::str(const SymbolTable& symtab) const {
  if (kind_ == Kind::LogVar)
    return (lval_ ? symtab.name(lvar_) : "!" + symtab.name(lvar_));
  if (kind_ == Kind::ArrayPred) {
    return std::string(lval_ ? "" : "!") + symtab.name(lvar_) + "(el[" + expr_.str(symtab) +
           "], " + apRhs_.str(symtab) + ")";
  }
  if (kind_ == Kind::Forall) {
    return "forall " + symtab.name(apBound_) + " in [" + apLo_.str(symtab) + "," +
           apUp_.str(symtab) + "]: " + (lval_ ? "" : "!") + symtab.name(lvar_) + "(el[" +
           expr_.str(symtab) + "], " + apRhs_.str(symtab) + ")";
  }
  const char* suffix = " != 0";
  switch (op_) {
    case RelOp::LE: suffix = " <= 0"; break;
    case RelOp::EQ: suffix = " == 0"; break;
    case RelOp::NE: suffix = " != 0"; break;
    case RelOp::RLT: suffix = " <. 0"; break;
    case RelOp::RLE: suffix = " <=. 0"; break;
    case RelOp::REQ: suffix = " ==. 0"; break;
    case RelOp::RNE: suffix = " !=. 0"; break;
  }
  return expr_.str(symtab) + suffix;
}

std::optional<SymExpr> solveForallInstance(const Atom& fa, const SymExpr& target) {
  // Solve fa.expr()(bv) == target for the bound variable: affine with
  // coefficient ±1 only.
  if (fa.kind() != Atom::Kind::Forall) return std::nullopt;
  const SymExpr& f = fa.expr();
  if (!f.isAffine() || !target.isAffine()) return std::nullopt;
  std::int64_t c = f.affineCoeff(fa.boundVar());
  if (c != 1 && c != -1) return std::nullopt;
  SymExpr rest = f - SymExpr::variable(fa.boundVar()).mulConst(c);
  // c*bv + rest = target  =>  bv = (target - rest) / c
  SymExpr sol = target - rest;
  if (c == -1) sol = -sol;
  if (sol.containsVar(fa.boundVar())) return std::nullopt;
  return sol;
}

namespace {

bool isRealOp(RelOp op) {
  return op == RelOp::RLT || op == RelOp::RLE || op == RelOp::REQ || op == RelOp::RNE;
}

/// Contradiction rules between two real-valued relational atoms that share
/// (up to a constant offset) the same expression.
Truth realPairContradict(const Atom& a, const Atom& b) {
  const RelOp oa = a.op();
  const RelOp ob = b.op();
  // e1 rel 0 and e2 rel 0 with e1 + e2 constant: the pair bounds a single
  // quantity from both sides.
  SymExpr sum = a.expr() + b.expr();
  if (auto c = sum.constantValue()) {
    const bool aStrict = oa == RelOp::RLT;
    const bool bStrict = ob == RelOp::RLT;
    const bool aUpper = oa == RelOp::RLT || oa == RelOp::RLE;
    const bool bUpper = ob == RelOp::RLT || ob == RelOp::RLE;
    if (aUpper && bUpper) {
      // e1 <= 0 (or <) and c - e1 <= 0 (or <): needs c <= e1 <= 0.
      if (*c > 0) return Truth::True;
      if (*c == 0 && (aStrict || bStrict)) return Truth::True;
    }
  }
  // Equality against a strict/negated form on the same expression.
  auto sameExpr = [](const Atom& x, const Atom& y) {
    return x.expr() == y.expr() || x.expr() == -y.expr();
  };
  if (oa == RelOp::REQ && (ob == RelOp::RLT) && sameExpr(a, b) &&
      (a.expr() == b.expr() || a.expr() == -b.expr())) {
    // e == 0 and e < 0 (or -e < 0) cannot both hold.
    return Truth::True;
  }
  if (ob == RelOp::REQ && (oa == RelOp::RLT) && sameExpr(a, b)) return Truth::True;
  return Truth::Unknown;
}

/// a => b for real-valued atoms via a constant slack on a shared expression.
Truth realPairImplies(const Atom& a, const Atom& b) {
  const RelOp oa = a.op();
  const RelOp ob = b.op();
  const bool aUpper = oa == RelOp::RLT || oa == RelOp::RLE;
  const bool bUpper = ob == RelOp::RLT || ob == RelOp::RLE;
  if (aUpper && bUpper) {
    // a: e1 rel 0, b: e2 rel 0 with e2 = e1 + d, d constant.
    if (auto d = (b.expr() - a.expr()).constantValue()) {
      const bool aStrict = oa == RelOp::RLT;
      const bool bStrict = ob == RelOp::RLT;
      if (*d < 0) return Truth::True;                      // strictly slacker
      if (*d == 0 && (aStrict || !bStrict)) return Truth::True;
    }
    return Truth::Unknown;
  }
  if (oa == RelOp::REQ && bUpper) {
    // e == 0 implies e <= 0 and -e <= 0 (and nothing strict).
    if (ob == RelOp::RLE && (b.expr() == a.expr() || b.expr() == -a.expr()))
      return Truth::True;
  }
  if (oa == RelOp::RLT && ob == RelOp::RNE && (a.expr() == b.expr() || -a.expr() == b.expr()))
    return Truth::True;
  return Truth::Unknown;
}

}  // namespace

Truth atomsContradict(const Atom& a, const Atom& b, const FmBudget& budget) {
  if (a.isPoisoned() || b.isPoisoned()) return Truth::Unknown;
  // Memoized in the global query cache: the simplifier asks about the same
  // atom pairs over and over as guards flow through the propagation. Keys
  // are interned atom keys (exact structural identity, no collision risk),
  // symmetric-normalized, plus the budget.
  QueryCache& cache = QueryCache::global();
  std::vector<std::uint64_t> key;
  if (cache.enabled()) {
    std::uint64_t ka = atomKey(a);
    std::uint64_t kb = atomKey(b);
    if (kb < ka) std::swap(ka, kb);  // contradiction is symmetric
    key = {ka, kb, budget.maxConstraints, budget.maxVariables};
    if (auto hit = cache.lookup(QueryCache::Tag::AtomsContradict, key)) return *hit;
  }
  Truth result = [&] {
  if (a.kind() == Atom::Kind::LogVar && b.kind() == Atom::Kind::LogVar) {
    if (a.logical() == b.logical() && a.logicalValue() != b.logicalValue()) return Truth::True;
    return Truth::Unknown;
  }
  if (a.kind() == Atom::Kind::ArrayPred && b.kind() == Atom::Kind::ArrayPred) {
    if (a.predArray() == b.predArray() && a.logical() == b.logical() &&
        a.logicalValue() != b.logicalValue() && a.expr() == b.expr() &&
        a.predRhs() == b.predRhs())
      return Truth::True;  // q(x) ∧ ¬q(x)
    return Truth::Unknown;
  }
  if (a.kind() == Atom::Kind::Forall || b.kind() == Atom::Kind::Forall) {
    // Context-free check: ∀bv∈[lo,up] (¬)q(f(bv)) clashes with an opposite
    // ArrayPred q(t) when f(bv) = t has a solution provably inside [lo,up]
    // (constant bounds and solution; the context-aware version lives in the
    // predicate simplifier).
    const Atom& fa = a.kind() == Atom::Kind::Forall ? a : b;
    const Atom& other = a.kind() == Atom::Kind::Forall ? b : a;
    if (other.kind() == Atom::Kind::ArrayPred && fa.predArray() == other.predArray() &&
        fa.logical() == other.logical() && fa.logicalValue() != other.logicalValue() &&
        fa.predRhs() == other.predRhs()) {
      if (auto t = solveForallInstance(fa, other.expr())) {
        auto lo = fa.forallLo().constantValue();
        auto up = fa.forallUp().constantValue();
        auto tc = t->constantValue();
        if (lo && up && tc && *lo <= *tc && *tc <= *up) return Truth::True;
      }
    }
    return Truth::Unknown;
  }
  if (a.kind() != b.kind()) return Truth::Unknown;
  // Syntactic fast paths.
  if (a == b.negated()) return Truth::True;
  const bool ra = isRealOp(a.op());
  const bool rb = isRealOp(b.op());
  if (ra || rb) {
    if (ra && rb) return realPairContradict(a, b);
    return Truth::Unknown;  // mixed integer/real: no shared theory
  }
  ConstraintSet cs;
  if (!a.addToConstraints(cs) || !b.addToConstraints(cs)) return Truth::Unknown;
  Truth t = cs.contradictory(budget);
  return t == Truth::True ? Truth::True : Truth::Unknown;
  }();
  if (cache.enabled()) cache.store(QueryCache::Tag::AtomsContradict, std::move(key), result);
  return result;
}

Truth atomsExhaustive(const Atom& a, const Atom& b, const FmBudget& budget) {
  // a ∨ b is a tautology iff ¬a ∧ ¬b is unsatisfiable.
  return atomsContradict(a.negated(), b.negated(), budget);
}

Truth atomImplies(const Atom& a, const Atom& b, const FmBudget& budget) {
  if (a == b) return Truth::True;
  if (a.kind() == Atom::Kind::Rel && b.kind() == Atom::Kind::Rel && isRealOp(a.op()) &&
      isRealOp(b.op())) {
    Truth direct = realPairImplies(a, b);
    if (direct == Truth::True) return Truth::True;
  }
  // a => b iff a ∧ ¬b is unsatisfiable.
  return atomsContradict(a, b.negated(), budget);
}

}  // namespace panorama
