// Entailment between guard predicates, used by the GAR union fast paths
// (P1 => P2 collapses the three-way union of §3.1 to two terms) and by the
// privatizability proofs.
#include "panorama/predicate/predicate.h"

#include "panorama/obs/provenance.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/intern.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

namespace {

/// Syntactic entailment of a clause: some hypothesis clause whose every atom
/// implies an atom of `goal`.
bool clauseSubsumed(const std::vector<Disjunct>& hyp, const Disjunct& goal,
                    const SimplifyOptions& opts) {
  for (const Disjunct& h : hyp) {
    bool all = true;
    for (const Atom& a : h.atoms) {
      bool covered = false;
      for (const Atom& b : goal.atoms) {
        if (atomImplies(a, b, opts.fmBudget) == Truth::True) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace

Truth Pred::implies(const Pred& other, const SimplifyOptions& opts) const {
  // A false hypothesis implies anything; anything implies True.
  if (isFalse()) return Truth::True;
  if (other.isTrue()) return Truth::True;
  // The goal's Δ conjunct is an unknowable obligation.
  if (other.isUnknown()) return compare(*this, other) == 0 ? Truth::True : Truth::Unknown;

  // Memoized in the global query cache under interned predicate keys (exact
  // structural identity) plus the simplifier knobs the verdict depends on.
  QueryCache& cache = QueryCache::global();
  std::vector<std::uint64_t> key;
  if (cache.enabled()) {
    key = {predKey(*this), predKey(other), opts.useFourierMotzkin ? 1u : 0u,
           opts.fmBudget.maxConstraints, opts.fmBudget.maxVariables};
    if (auto hit = cache.lookup(QueryCache::Tag::PredImplies, key)) return *hit;
  }

  // Cold evaluation below: traced as a query span, and an Unknown verdict
  // is reported to the active provenance scope (cached verdicts skip both —
  // the notes are best-effort by design, see obs/provenance.h).
  obs::Span span("query.implies", "Pred::implies");
  if (span.active()) {
    // Full predicate rendering needs a SymbolTable (unreachable here), so
    // the span carries a structural skeleton: interned keys plus clause and
    // atom cardinalities, enough to identify the query in a profile.
    auto atomCount = [](const Pred& p) {
      std::size_t n = 0;
      for (const Disjunct& d : p.clauses()) n += d.atoms.size();
      return n;
    };
    span.arg("expr", "P#" + std::to_string(predKey(*this)) + " (" +
                         std::to_string(clauses().size()) + " clauses, " +
                         std::to_string(atomCount(*this)) + " atoms) => P#" +
                         std::to_string(predKey(other)) + " (" +
                         std::to_string(other.clauses().size()) + " clauses, " +
                         std::to_string(atomCount(other)) + " atoms)");
    if (std::string ctx = obs::ProvenanceScope::currentLabel(); !ctx.empty())
      span.arg("ctx", std::move(ctx));
  }
  Truth verdict = [&] {
    // The hypothesis context available to FM: unit clauses of the CNF
    // over-approximation. (actual => CNF => goal suffices.)
    ConstraintSet context = unitConstraints();

    for (const Disjunct& goal : other.clauses()) {
      if (clauseSubsumed(clauses(), goal, opts)) continue;
      if (!opts.useFourierMotzkin) return Truth::Unknown;
      // FM refutation: context ∧ ¬goal must be infeasible. ¬goal is the
      // conjunction of the negated atoms of the clause.
      ConstraintSet cs = context;
      bool representable = true;
      for (const Atom& a : goal.atoms) {
        if (!a.negated().addToConstraints(cs)) {
          representable = false;
          break;
        }
      }
      if (!representable) return Truth::Unknown;
      if (cs.contradictory(opts.fmBudget) != Truth::True) return Truth::Unknown;
    }
    return Truth::True;
  }();
  if (span.active()) span.arg("verdict", toString(verdict));
  if (verdict == Truth::Unknown && obs::ProvenanceScope::active())
    obs::ProvenanceScope::note("implies",
                               "predicate implication undecided (clause not subsumed and FM "
                               "refutation inconclusive)");
  if (cache.enabled()) cache.store(QueryCache::Tag::PredImplies, std::move(key), verdict);
  return verdict;
}

}  // namespace panorama
