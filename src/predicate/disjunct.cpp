#include <algorithm>

#include "panorama/predicate/predicate.h"

namespace panorama {

Disjunct Disjunct::single(Atom a) {
  Disjunct d;
  d.atoms.push_back(std::move(a));
  return d;
}

void Disjunct::normalize() {
  std::sort(atoms.begin(), atoms.end(),
            [](const Atom& a, const Atom& b) { return Atom::compare(a, b) < 0; });
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
}

std::optional<bool> Disjunct::evaluate(const Binding& binding) const {
  bool sawUnknown = false;
  for (const Atom& a : atoms) {
    auto v = a.evaluate(binding);
    if (!v)
      sawUnknown = true;
    else if (*v)
      return true;
  }
  if (sawUnknown) return std::nullopt;
  return false;
}

std::string Disjunct::str(const SymbolTable& symtab) const {
  if (atoms.empty()) return "false";
  std::string out;
  if (atoms.size() > 1) out += '(';
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i) out += " or ";
    out += atoms[i].str(symtab);
  }
  if (atoms.size() > 1) out += ')';
  return out;
}

int Disjunct::compare(const Disjunct& a, const Disjunct& b) {
  if (a.atoms.size() != b.atoms.size()) return a.atoms.size() < b.atoms.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    int c = Atom::compare(a.atoms[i], b.atoms[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace panorama
