#include "panorama/predicate/arena.h"

#include <algorithm>
#include <mutex>

namespace panorama {

namespace {

std::size_t hashClauses(const std::vector<Disjunct>& clauses, bool unknown) {
  std::size_t h = unknown ? 0x9e3779b9u : 0;
  for (const Disjunct& d : clauses) {
    h = h * 131 + d.atoms.size();
    for (const Atom& a : d.atoms) h = h * 131 + a.hashValue();
  }
  return h;
}

std::size_t footprint(const detail::PredNode& n) {
  std::size_t b = sizeof(detail::PredNode) + n.clauses.capacity() * sizeof(Disjunct);
  for (const Disjunct& d : n.clauses) b += d.atoms.capacity() * sizeof(Atom);
  return b;
}

}  // namespace

PredArena& PredArena::global() {
  static PredArena arena;
  return arena;
}

PredRef PredArena::intern(std::vector<Disjunct> clauses, bool unknown) {
  const std::size_t h = hashClauses(clauses, unknown);
  const std::size_t s = h % kShards;
  Shard& shard = shards_[s];
  auto find = [&]() -> const detail::PredNode* {
    auto it = shard.index.find(h);
    if (it == shard.index.end()) return nullptr;
    for (const detail::PredNode* n : it->second)
      if (n->unknown == unknown && n->clauses == clauses) return n;
    return nullptr;
  };
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    if (const detail::PredNode* n = find()) return PredRef(n);
  }
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (const detail::PredNode* n = find()) return PredRef(n);
  detail::PredNode& node = shard.nodes.emplace_back();
  node.clauses = std::move(clauses);
  node.unknown = unknown;
  node.hash = h;
  node.id = (shard.next++ << kShardBits) | static_cast<std::uint64_t>(s);
  shard.index[h].push_back(&node);
  shard.bytes += footprint(node);
  return PredRef(&node);
}

PredArena::Stats PredArena::stats() const {
  Stats out;
  bool first = true;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const std::size_t n = shard.nodes.size();
    out.distinct += n;
    out.bytes += shard.bytes;
    out.minShard = first ? n : std::min(out.minShard, n);
    out.maxShard = first ? n : std::max(out.maxShard, n);
    first = false;
  }
  return out;
}

}  // namespace panorama
