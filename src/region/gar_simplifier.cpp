// The GAR simplifier (§5.2): removes empty and redundant GARs, merges
// same-region GARs by OR-ing guards, merges adjacent regions under equal
// guards, and applies the §5.3 special cases for unknown components
// (Ω absorbed by a whole-array member).
#include <algorithm>

#include "panorama/region/gar.h"

namespace panorama {

namespace {

CmpCtx ctxWith(const CmpCtx& ctx, const Pred& p) {
  ConstraintSet cs = ctx.context();
  ConstraintSet units = p.unitConstraints();
  for (const LinearConstraint& c : units.constraints()) cs.add(c);
  return ctx.withContext(std::move(cs));
}

/// Does `g` cover the whole declared array with certainty? (guard exactly
/// true, region contains the declared shape)
bool coversWholeArray(const Gar& g, const CmpCtx& ctx, const ArrayTable& arrays) {
  if (!g.guard().isTrue()) return false;
  const ArrayShape& shape = arrays.shape(g.array());
  if (shape.declaredDims.empty() || shape.rank() != g.region().rank()) return false;
  Region declared{g.array(), shape.declaredDims};
  return regionContains(g.region(), declared, ctx) == Truth::True;
}

}  // namespace

void simplifyGarList(GarList& list, const CmpCtx& ctx, const ArrayTable* arrays) {
  std::vector<Gar> gars(list.begin(), list.end());

  // Pass 1: guard simplification and dead-piece removal.
  {
    std::vector<Gar> kept;
    for (Gar& g : gars) {
      Pred guard = g.guard();
      guard.simplify();
      if (guard.isFalse()) continue;
      kept.push_back(Gar::make(std::move(guard), g.region(), ctx.psi()));
    }
    gars = std::move(kept);
  }

  // Pass 2: merge same-region members ([P1,R] ∪ [P2,R] = [P1 ∨ P2, R]) and
  // adjacent regions under equal guards; iterate to a (bounded) fixpoint.
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds <= 8) {
    changed = false;
    for (std::size_t i = 0; i < gars.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < gars.size() && !changed; ++j) {
        if (gars[i].array() != gars[j].array()) continue;
        if (gars[i].region() == gars[j].region()) {
          Pred merged = gars[i].guard() || gars[j].guard();
          merged.simplify();
          Gar g = Gar::make(std::move(merged), gars[i].region(), ctx.psi());
          gars.erase(gars.begin() + j);
          gars[i] = std::move(g);
          changed = true;
          break;
        }
        if (gars[i].guard() == gars[j].guard() && !gars[i].guard().isUnknown()) {
          CmpCtx ectx = ctxWith(ctx, gars[i].guard());
          if (auto merged = regionUnionPair(gars[i].region(), gars[j].region(), ectx)) {
            Gar g = Gar::make(gars[i].guard(), std::move(*merged), ctx.psi());
            gars.erase(gars.begin() + j);
            gars[i] = std::move(g);
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Pass 3: subsumption — drop [P1,R1] when another member [P2,R2] has
  // P1 => P2 and R2 ⊇ R1 (checked under P1's own constraints).
  {
    std::vector<bool> drop(gars.size(), false);
    for (std::size_t i = 0; i < gars.size(); ++i) {
      if (drop[i]) continue;
      for (std::size_t j = 0; j < gars.size(); ++j) {
        if (i == j || drop[j] || drop[i]) continue;
        if (gars[i].array() != gars[j].array()) continue;
        // Ω absorption (§5.3): an unknown member is subsumed by a certain
        // whole-array member.
        if (arrays && gars[i].isOmega() && coversWholeArray(gars[j], ctx, *arrays)) {
          drop[i] = true;
          continue;
        }
        if (gars[i].region().hasUnknownDim()) continue;  // can't prove containment
        if (gars[i].guard().implies(gars[j].guard()) != Truth::True) continue;
        CmpCtx ectx = ctxWith(ctx, gars[i].guard());
        if (regionContains(gars[j].region(), gars[i].region(), ectx) == Truth::True)
          drop[i] = true;
      }
    }
    std::vector<Gar> kept;
    for (std::size_t i = 0; i < gars.size(); ++i)
      if (!drop[i]) kept.push_back(std::move(gars[i]));
    gars = std::move(kept);
  }

  GarList out;
  for (Gar& g : gars) out.add(std::move(g));
  list = std::move(out);
}

}  // namespace panorama
