// Range set operations (§3.1 intersection case analysis, §5.1 step rules).
//
// max/min boundaries are never materialized: each ordering case becomes an
// explicit inequality in the piece's guard, and provable orderings (under the
// caller's guard context) prune cases eagerly — the "usually much simpler
// than the general formula" behaviour the paper describes.
#include <array>

#include "panorama/region/range.h"

namespace panorama {

namespace {

/// How two ranges' grids relate.
enum class GridRel {
  Aligned,   ///< same step, origins provably on the same grid
  Disjoint,  ///< same step, origins provably on different grids
  Cover,     ///< r2's grid is finer and contains r1's grid
  Unknown,
};

/// Polynomial divisibility of (a - b) by constant c.
bool diffDivisible(const SymExpr& a, const SymExpr& b, std::int64_t c) {
  return (a - b).divExact(c).has_value();
}

/// Grid normalization: the set-operation formulas assume a range's upper
/// bound lies on its own grid (lo + k*step); an off-grid upper like
/// (13 : 14 : 2) breaks the "+step" anchoring of subtraction remainders.
/// Rewrites the bound when possible, nullopt when undecidable.
std::optional<SymRange> gridNormalize(const SymRange& r) {
  auto c = r.step.constantValue();
  if (r.isPoint() || r.isUnknown() || (c && *c == 1)) return r;
  if (!c || *c <= 0) {
    // Symbolic step: on-grid only provable when (up - lo) divides evenly.
    return std::nullopt;
  }
  SymExpr d = r.up - r.lo;
  if (d.divExact(*c).has_value()) return r;
  if (auto dc = d.constantValue()) {
    if (*dc < 0) return r;  // empty range; bound position is irrelevant
    return SymRange{r.lo, r.up - (*dc % *c), r.step};
  }
  return std::nullopt;
}

GridRel classify(const SymRange& r1, const SymRange& r2) {
  const bool p1 = r1.isPoint();
  const bool p2 = r2.isPoint();
  auto s1 = r1.step.constantValue();
  auto s2 = r2.step.constantValue();

  // Points sit on any unit grid; on a coarser grid they need an alignment
  // proof against the other range's origin.
  if (p1 && p2) return GridRel::Aligned;
  if (p1) {
    if (s2 && *s2 == 1) return GridRel::Aligned;
    if (s2 && *s2 > 1) {
      if (diffDivisible(r1.lo, r2.lo, *s2)) return GridRel::Aligned;
      auto d = (r1.lo - r2.lo).constantValue();
      if (d && *d % *s2 != 0) return GridRel::Disjoint;
    }
    return GridRel::Unknown;
  }
  if (p2) {
    if (s1 && *s1 == 1) return GridRel::Aligned;
    if (s1 && *s1 > 1) {
      if (diffDivisible(r2.lo, r1.lo, *s1)) return GridRel::Aligned;
      auto d = (r2.lo - r1.lo).constantValue();
      if (d && *d % *s1 != 0) return GridRel::Disjoint;
    }
    return GridRel::Unknown;
  }

  if (s1 && s2) {
    if (*s1 == *s2) {
      if (*s1 == 1) return GridRel::Aligned;  // case 1
      if (diffDivisible(r1.lo, r2.lo, *s1)) return GridRel::Aligned;  // case 2, aligned
      auto d = (r1.lo - r2.lo).constantValue();
      if (d && *d % *s1 != 0) return GridRel::Disjoint;  // case 2, misaligned
      return GridRel::Unknown;
    }
    if (*s2 > 0 && *s1 > 0 && *s1 % *s2 == 0 && diffDivisible(r1.lo, r2.lo, *s2))
      return GridRel::Cover;  // case 4: r2's grid refines r1's
    return GridRel::Unknown;  // case 5
  }
  // case 3: symbolic but identical steps and identical origins behave as
  // aligned; identical steps with different origins are undecidable.
  if (r1.step == r2.step && r1.lo == r2.lo) return GridRel::Aligned;
  return GridRel::Unknown;
}

/// The effective common step of two grid-aligned ranges (points inherit the
/// other operand's step).
SymExpr commonStep(const SymRange& r1, const SymRange& r2) {
  if (r1.isPoint() && r2.isPoint()) return SymExpr::constant(1);
  if (r1.isPoint()) return r2.step;
  return r1.step;
}

/// Conjoins `atom` to `guard`, folding constants; returns false when the
/// piece is provably dead.
bool conjoin(Pred& guard, Atom atom) {
  Pred p = Pred::atom(std::move(atom));
  if (p.isFalse()) return false;
  guard = guard && p;
  return !guard.isFalse();
}

/// Enumerates the (lo-case × up-case) partition of §3.1's intersection
/// formula, pruning cases the context decides. The callback receives the
/// case guard plus the intersection bounds (ilo = max(l1,l2), iup =
/// min(u1,u2)) valid within that case.
template <typename Fn>
void forEachBoundCase(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx, Fn&& fn) {
  const Truth tl = ctx.le(r1.lo, r2.lo);
  const Truth tu = ctx.le(r1.up, r2.up);
  for (int lc = 0; lc < 2; ++lc) {
    const bool loFirst = lc == 0;  // l1 <= l2 ?
    if ((loFirst && tl == Truth::False) || (!loFirst && tl == Truth::True)) continue;
    for (int uc = 0; uc < 2; ++uc) {
      const bool upFirst = uc == 0;  // u1 <= u2 ?
      if ((upFirst && tu == Truth::False) || (!upFirst && tu == Truth::True)) continue;
      Pred guard = Pred::makeTrue();
      if (tl == Truth::Unknown &&
          !conjoin(guard, loFirst ? Atom::le(r1.lo, r2.lo) : Atom::gt(r1.lo, r2.lo)))
        continue;
      if (tu == Truth::Unknown &&
          !conjoin(guard, upFirst ? Atom::le(r1.up, r2.up) : Atom::gt(r1.up, r2.up)))
        continue;
      const SymExpr& ilo = loFirst ? r2.lo : r1.lo;
      const SymExpr& iup = upFirst ? r1.up : r2.up;
      fn(std::move(guard), ilo, iup);
    }
  }
}

/// Extends `ctx` with the unit constraints of `guard` (used to decide
/// validity of intersection bounds inside one ordering case).
CmpCtx extendCtx(const CmpCtx& ctx, const Pred& guard) {
  ConstraintSet cs = ctx.context();
  ConstraintSet units = guard.unitConstraints();
  for (const LinearConstraint& c : units.constraints()) cs.add(c);
  return ctx.withContext(std::move(cs));
}

}  // namespace

Truth rangesDisjoint(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx) {
  if (r1.isUnknown() || r2.isUnknown()) return Truth::Unknown;
  if (ctx.lt(r1.up, r2.lo) == Truth::True) return Truth::True;
  if (ctx.lt(r2.up, r1.lo) == Truth::True) return Truth::True;
  if (classify(r1, r2) == GridRel::Disjoint) return Truth::True;
  return Truth::Unknown;
}

RangeOpResult rangeIntersect(const SymRange& r1in, const SymRange& r2in, const CmpCtx& ctx) {
  // Best-effort grid normalization keeps produced pieces grid-true so that
  // later subtractions need not degrade.
  const SymRange r1 = gridNormalize(r1in).value_or(r1in);
  const SymRange r2 = gridNormalize(r2in).value_or(r2in);
  RangeOpResult out;
  if (r1.isUnknown() || r2.isUnknown()) {
    out.pieces.push_back({Pred::makeUnknown(), SymRange::unknown()});
    out.unknown = true;
    return out;
  }
  if (rangesDisjoint(r1, r2, ctx) == Truth::True) return out;  // empty

  // Point-point: a single equality guard beats the case machinery.
  if (r1.isPoint() && r2.isPoint()) {
    Truth eq = ctx.eq(r1.lo, r2.lo);
    if (eq == Truth::False) return out;
    Pred guard = eq == Truth::True ? Pred::makeTrue() : Pred::atom(Atom::eq(r1.lo, r2.lo));
    out.pieces.push_back({std::move(guard), r1});
    return out;
  }

  switch (classify(r1, r2)) {
    case GridRel::Disjoint:
      return out;
    case GridRel::Cover: {
      // r2's grid refines r1's: the intersection is r1 clipped to r2's
      // bounds. Only the fully-covered situation is resolved exactly.
      CmpCtx ectx = ctx;
      if (ectx.le(r2.lo, r1.lo) == Truth::True && ectx.le(r1.up, r2.up) == Truth::True) {
        out.pieces.push_back({Pred::makeTrue(), r1});
        return out;
      }
      out.pieces.push_back({Pred::makeUnknown(), SymRange::unknown()});
      out.unknown = true;
      return out;
    }
    case GridRel::Unknown: {
      out.pieces.push_back({Pred::makeUnknown(), SymRange::unknown()});
      out.unknown = true;
      return out;
    }
    case GridRel::Aligned:
      break;
  }

  const SymExpr s = commonStep(r1, r2);
  forEachBoundCase(r1, r2, ctx, [&](Pred guard, const SymExpr& ilo, const SymExpr& iup) {
    SymRange piece{ilo, iup, s};
    CmpCtx ectx = extendCtx(ctx, guard);
    Truth valid = ectx.le(ilo, iup);
    if (valid == Truth::False) return;
    if (valid == Truth::Unknown && !conjoin(guard, Atom::le(ilo, iup))) return;
    out.pieces.push_back({std::move(guard), std::move(piece)});
  });
  return out;
}

RangeOpResult rangeSubtract(const SymRange& r1in, const SymRange& r2in, const CmpCtx& ctx) {
  // The remainder formulas anchor at iup + step, which must land on the
  // common grid: both operands need grid-true upper bounds.
  std::optional<SymRange> r1n = gridNormalize(r1in);
  std::optional<SymRange> r2n = gridNormalize(r2in);
  if (!r1n || !r2n) {
    RangeOpResult out;
    if (r1in.isUnknown()) {
      out.pieces.push_back({Pred::makeUnknown(), SymRange::unknown()});
    } else {
      out.pieces.push_back({Pred::makeUnknown(), r1in});
    }
    out.unknown = true;
    return out;
  }
  const SymRange& r1 = *r1n;
  const SymRange& r2 = *r2n;
  RangeOpResult out;
  if (r1.isUnknown()) {
    out.pieces.push_back({Pred::makeUnknown(), SymRange::unknown()});
    out.unknown = true;
    return out;
  }
  if (r2.isUnknown()) {
    // Cannot kill anything reliably: keep r1 under Δ (over-approximation).
    out.pieces.push_back({Pred::makeUnknown(), r1});
    out.unknown = true;
    return out;
  }
  if (rangesDisjoint(r1, r2, ctx) == Truth::True) {
    out.pieces.push_back({Pred::makeTrue(), r1});
    return out;
  }

  if (r1.isPoint() && r2.isPoint()) {
    Truth eq = ctx.eq(r1.lo, r2.lo);
    if (eq == Truth::True) return out;  // removed entirely
    Pred guard = eq == Truth::False ? Pred::makeTrue() : Pred::atom(Atom::ne(r1.lo, r2.lo));
    out.pieces.push_back({std::move(guard), r1});
    return out;
  }

  GridRel rel = classify(r1, r2);
  if (rel == GridRel::Disjoint) {
    out.pieces.push_back({Pred::makeTrue(), r1});
    return out;
  }
  if (rel == GridRel::Cover) {
    CmpCtx ectx = ctx;
    if (ectx.le(r2.lo, r1.lo) == Truth::True && ectx.le(r1.up, r2.up) == Truth::True)
      return out;  // fully covered: empty difference
    rel = GridRel::Unknown;
  }
  if (rel == GridRel::Unknown) {
    out.pieces.push_back({Pred::makeUnknown(), r1});
    out.unknown = true;
    return out;
  }

  // Aligned: within each ordering case the intersection is (ilo : iup : s);
  // the difference keeps the left and right remainders of r1, or all of r1
  // when the intersection is empty in that case.
  const SymExpr s = commonStep(r1, r2);
  forEachBoundCase(r1, r2, ctx, [&](Pred guard, const SymExpr& ilo, const SymExpr& iup) {
    CmpCtx ectx = extendCtx(ctx, guard);
    Truth valid = ectx.le(ilo, iup);
    if (valid != Truth::False) {
      Pred nonempty = guard;
      bool alive = true;
      if (valid == Truth::Unknown) alive = conjoin(nonempty, Atom::le(ilo, iup));
      if (alive) {
        CmpCtx nctx = extendCtx(ctx, nonempty);
        // Left remainder (l1 : ilo - s : s), alive when l1 < ilo.
        Truth hasLeft = nctx.lt(r1.lo, ilo);
        if (hasLeft != Truth::False) {
          Pred g = nonempty;
          bool keep = hasLeft == Truth::True || conjoin(g, Atom::lt(r1.lo, ilo));
          if (keep) out.pieces.push_back({std::move(g), SymRange{r1.lo, ilo - s, s}});
        }
        // Right remainder (iup + s : u1 : s), alive when iup < u1.
        Truth hasRight = nctx.lt(iup, r1.up);
        if (hasRight != Truth::False) {
          Pred g = nonempty;
          bool keep = hasRight == Truth::True || conjoin(g, Atom::lt(iup, r1.up));
          if (keep) out.pieces.push_back({std::move(g), SymRange{iup + s, r1.up, s}});
        }
      }
    }
    if (valid != Truth::True) {
      // Empty-intersection branch of this case: nothing is removed.
      Pred g = std::move(guard);
      if (valid == Truth::Unknown && !conjoin(g, Atom::gt(ilo, iup))) return;
      out.pieces.push_back({std::move(g), r1});
    }
  });
  return out;
}

std::optional<SymRange> rangeUnionPair(const SymRange& r1, const SymRange& r2,
                                       const CmpCtx& ctx) {
  if (r1.isUnknown() || r2.isUnknown()) return std::nullopt;
  if (rangeContains(r1, r2, ctx) == Truth::True) return r1;
  if (rangeContains(r2, r1, ctx) == Truth::True) return r2;
  if (classify(r1, r2) != GridRel::Aligned) return std::nullopt;
  const SymExpr s = commonStep(r1, r2);
  // Merge requires provable overlap-or-adjacency in both directions (§5.1)
  // and a provable bound ordering so min/max resolve without case splits.
  if (ctx.le(r2.lo, r1.up + s) != Truth::True) return std::nullopt;
  if (ctx.le(r1.lo, r2.up + s) != Truth::True) return std::nullopt;
  SymExpr lo;
  SymExpr up;
  if (ctx.le(r1.lo, r2.lo) == Truth::True)
    lo = r1.lo;
  else if (ctx.le(r2.lo, r1.lo) == Truth::True)
    lo = r2.lo;
  else
    return std::nullopt;
  if (ctx.le(r1.up, r2.up) == Truth::True)
    up = r2.up;
  else if (ctx.le(r2.up, r1.up) == Truth::True)
    up = r1.up;
  else
    return std::nullopt;
  return SymRange{std::move(lo), std::move(up), s};
}

Truth rangeContains(const SymRange& outer, const SymRange& inner, const CmpCtx& ctx) {
  if (outer.isUnknown() || inner.isUnknown()) return Truth::Unknown;
  // classify(inner, outer) == Aligned: same grid. == Cover: outer's grid is
  // finer and includes every point of inner's grid. Either way, provable
  // bound ordering settles containment.
  GridRel rel = classify(inner, outer);
  if (rel != GridRel::Aligned && rel != GridRel::Cover) return Truth::Unknown;
  if (ctx.le(outer.lo, inner.lo) != Truth::True) return Truth::Unknown;
  if (ctx.le(inner.up, outer.up) != Truth::True) return Truth::Unknown;
  return Truth::True;
}

}  // namespace panorama
