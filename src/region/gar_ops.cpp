// GAR set operations (§3.1): union, intersection and difference over lists,
// with the nested-GAR recombination [[P, Tlist]] realized by conjoining P
// into every produced piece's guard.
#include <algorithm>

#include "panorama/region/gar.h"

namespace panorama {

namespace {

/// Size valve for difference chains: beyond this, remaining subtrahends are
/// skipped and the piece keeps a Δ guard (refuses to kill — sound).
constexpr std::size_t kMaxListSize = 48;

/// Context extended with the unit constraints of `p` (guards refine symbolic
/// comparisons inside region operations — the paper's "disambiguates the
/// symbolic values precisely for set operations").
CmpCtx ctxWith(const CmpCtx& ctx, const Pred& p) {
  ConstraintSet cs = ctx.context();
  ConstraintSet units = p.unitConstraints();
  for (const LinearConstraint& c : units.constraints()) cs.add(c);
  return ctx.withContext(std::move(cs));
}

/// T1 ∩ T2 for single GARs.
GarList garIntersectOne(const Gar& a, const Gar& b, const CmpCtx& ctx) {
  GarList out;
  if (a.array() != b.array()) return out;
  Pred g = a.guard() && b.guard();
  g.simplify();
  if (g.isFalse()) return out;
  CmpCtx ectx = ctxWith(ctx, g);
  RegionOpResult pieces = regionIntersect(a.region(), b.region(), ectx);
  for (GuardedRegion& piece : pieces.pieces)
    out.add(Gar::make(g && piece.guard, std::move(piece.region), ctx.psi()));
  return out;
}

/// T1 − T2 for single GARs: [[P1 ∧ P2, R1 − R2]] ∪ [P1 ∧ ¬P2, R1].
GarList garSubtractOne(const Gar& a, const Gar& b, const CmpCtx& ctx) {
  GarList out;
  if (a.array() != b.array()) {
    out.add(a);
    return out;
  }
  // Kill-safety: only an exact subtrahend region may remove elements. An
  // inexact guard is handled below through ¬P2 degrading to Δ; an Ω region
  // is handled inside rangeSubtract (keeps r1 under Δ).
  Pred both = a.guard() && b.guard();
  both.simplify();
  if (!both.isFalse()) {
    CmpCtx ectx = ctxWith(ctx, both);
    RegionOpResult diff = regionSubtract(a.region(), b.region(), ectx);
    for (GuardedRegion& piece : diff.pieces)
      out.add(Gar::make(both && piece.guard, std::move(piece.region), ctx.psi()));
  }
  Pred notB = !b.guard();
  Pred remainder = a.guard() && notB;
  remainder.simplify();
  if (!remainder.isFalse()) out.add(Gar::make(std::move(remainder), a.region(), ctx.psi()));
  return out;
}

}  // namespace

GarList garUnion(const GarList& a, const GarList& b, const CmpCtx& ctx,
                 const ArrayTable* arrays) {
  GarList out = a;
  out.append(b);
  simplifyGarList(out, ctx, arrays);
  return out;
}

GarList garIntersect(const GarList& a, const GarList& b, const CmpCtx& ctx) {
  GarList out;
  for (const Gar& ga : a.gars())
    for (const Gar& gb : b.gars()) out.append(garIntersectOne(ga, gb, ctx));
  simplifyGarList(out, ctx, nullptr);
  return out;
}

GarList garSubtract(const GarList& a, const GarList& b, const CmpCtx& ctx) {
  GarList out;
  for (const Gar& ga : a.gars()) {
    GarList current = GarList::single(ga);
    for (const Gar& gb : b.gars()) {
      if (current.empty()) break;
      GarList next;
      bool overflowed = false;
      for (const Gar& piece : current.gars()) {
        if (next.size() > kMaxListSize) {
          overflowed = true;
        }
        if (overflowed) {
          // Stop refining: keep the piece, tainted, so nothing is over-killed.
          next.add(piece.withGuard(Pred::makeUnknown()));
          continue;
        }
        next.append(garSubtractOne(piece, gb, ctx));
      }
      current = std::move(next);
      simplifyGarList(current, ctx, nullptr);
    }
    out.append(current);
  }
  simplifyGarList(out, ctx, nullptr);
  return out;
}

Truth garIntersectionEmpty(const GarList& a, const GarList& b, const CmpCtx& ctx) {
  for (const Gar& ga : a.gars()) {
    for (const Gar& gb : b.gars()) {
      if (ga.array() != gb.array()) continue;
      Pred g = ga.guard() && gb.guard();
      g.simplify();
      if (g.isFalse()) continue;
      CmpCtx ectx = ctxWith(ctx, g);
      if (regionsDisjoint(ga.region(), gb.region(), ectx) == Truth::True) continue;
      // Try the materialized intersection: all pieces must die.
      GarList inter = garIntersectOne(ga, gb, ctx);
      if (!inter.empty()) return Truth::Unknown;
    }
  }
  return Truth::True;
}

}  // namespace panorama
