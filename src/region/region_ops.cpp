// Multidimensional region operations, built by lifting the guarded range
// operations dimension-wise (§3.1).
#include <algorithm>

#include "panorama/region/region.h"

namespace panorama {

namespace {

/// Valve on the cartesian recombination: beyond this many pieces the result
/// degrades to unknown rather than exploding.
constexpr std::size_t kMaxPieces = 64;

void pushPiece(RegionOpResult& out, Pred guard, Region region) {
  if (guard.isFalse()) return;
  out.pieces.push_back({std::move(guard), std::move(region)});
}

}  // namespace

Truth regionsDisjoint(const Region& r1, const Region& r2, const CmpCtx& ctx) {
  if (r1.array != r2.array) return Truth::True;
  if (r1.rank() != r2.rank()) return Truth::Unknown;
  for (int i = 0; i < r1.rank(); ++i)
    if (rangesDisjoint(r1.dims[i], r2.dims[i], ctx) == Truth::True) return Truth::True;
  return Truth::Unknown;
}

Truth regionContains(const Region& outer, const Region& inner, const CmpCtx& ctx) {
  if (outer.array != inner.array || outer.rank() != inner.rank()) return Truth::Unknown;
  for (int i = 0; i < outer.rank(); ++i)
    if (rangeContains(outer.dims[i], inner.dims[i], ctx) != Truth::True) return Truth::Unknown;
  return Truth::True;
}

RegionOpResult regionIntersect(const Region& r1, const Region& r2, const CmpCtx& ctx) {
  RegionOpResult out;
  if (r1.array != r2.array || r1.rank() != r2.rank()) return out;  // disjoint: empty

  // Per-dimension intersections first; an empty dimension empties the whole
  // intersection (the ∃i Di = ∅ case of §3.1).
  std::vector<RangeOpResult> perDim;
  perDim.reserve(r1.rank());
  for (int i = 0; i < r1.rank(); ++i) {
    RangeOpResult d = rangeIntersect(r1.dims[i], r2.dims[i], ctx);
    if (d.pieces.empty()) return out;
    perDim.push_back(std::move(d));
  }

  // Cartesian recombination of the guarded pieces.
  std::vector<GuardedRegion> acc;
  acc.push_back({Pred::makeTrue(), Region{r1.array, {}}});
  for (RangeOpResult& d : perDim) {
    out.unknown = out.unknown || d.unknown;
    std::vector<GuardedRegion> next;
    for (GuardedRegion& partial : acc) {
      for (const GuardedRange& piece : d.pieces) {
        Pred g = partial.guard && piece.guard;
        if (g.isFalse()) continue;
        Region r = partial.region;
        r.dims.push_back(piece.range);
        next.push_back({std::move(g), std::move(r)});
      }
    }
    acc = std::move(next);
    if (acc.size() > kMaxPieces) {
      out.pieces.clear();
      Region omega{r1.array, std::vector<SymRange>(r1.rank(), SymRange::unknown())};
      pushPiece(out, Pred::makeUnknown(), std::move(omega));
      out.unknown = true;
      return out;
    }
  }
  out.pieces = std::move(acc);
  return out;
}

namespace {

/// Recursive peel over dimensions d..m of §3.1's difference formula:
///   R1(d..) − R2(d..) = (r1[d] − r2[d], tail of R1)
///                     ∪ (r1[d] ∩ r2[d], R1(d+1..) − R2(d+1..))
void subtractDims(const Region& r1, const Region& r2, int d, const CmpCtx& ctx,
                  const Pred& guard, std::vector<SymRange>& prefix, RegionOpResult& out) {
  const int m = r1.rank();
  RangeOpResult diff = rangeSubtract(r1.dims[d], r2.dims[d], ctx);
  out.unknown = out.unknown || diff.unknown;
  for (GuardedRange& piece : diff.pieces) {
    Pred g = guard && piece.guard;
    if (g.isFalse()) continue;
    Region r{r1.array, prefix};
    r.dims.push_back(piece.range);
    for (int k = d + 1; k < m; ++k) r.dims.push_back(r1.dims[k]);
    pushPiece(out, std::move(g), std::move(r));
  }
  if (d + 1 >= m) return;
  RangeOpResult inter = rangeIntersect(r1.dims[d], r2.dims[d], ctx);
  out.unknown = out.unknown || inter.unknown;
  for (GuardedRange& piece : inter.pieces) {
    Pred g = guard && piece.guard;
    if (g.isFalse()) continue;
    prefix.push_back(piece.range);
    subtractDims(r1, r2, d + 1, ctx, g, prefix, out);
    prefix.pop_back();
    if (out.pieces.size() > kMaxPieces) return;
  }
}

}  // namespace

RegionOpResult regionSubtract(const Region& r1, const Region& r2, const CmpCtx& ctx) {
  RegionOpResult out;
  if (r1.array != r2.array || r1.rank() != r2.rank()) {
    pushPiece(out, Pred::makeTrue(), r1);  // nothing removable
    return out;
  }
  if (regionsDisjoint(r1, r2, ctx) == Truth::True) {
    pushPiece(out, Pred::makeTrue(), r1);
    return out;
  }
  std::vector<SymRange> prefix;
  subtractDims(r1, r2, 0, ctx, Pred::makeTrue(), prefix, out);
  if (out.pieces.size() > kMaxPieces) {
    // Degrade: refuse to kill anything (sound over-approximation).
    out.pieces.clear();
    pushPiece(out, Pred::makeUnknown(), r1);
    out.unknown = true;
  }
  return out;
}

std::optional<Region> regionUnionPair(const Region& r1, const Region& r2, const CmpCtx& ctx) {
  if (r1.array != r2.array || r1.rank() != r2.rank()) return std::nullopt;
  if (r1 == r2) return r1;
  int differing = -1;
  for (int i = 0; i < r1.rank(); ++i) {
    if (r1.dims[i] == r2.dims[i]) continue;
    if (differing >= 0) return std::nullopt;  // more than one dimension differs
    differing = i;
  }
  auto merged = rangeUnionPair(r1.dims[differing], r2.dims[differing], ctx);
  if (!merged) return std::nullopt;
  Region out = r1;
  out.dims[differing] = std::move(*merged);
  return out;
}

}  // namespace panorama
