#include "panorama/region/region.h"

#include <algorithm>

namespace panorama {

ArrayId ArrayTable::intern(std::string name, std::vector<SymRange> declaredDims) {
  for (std::size_t i = 0; i < shapes_.size(); ++i)
    if (shapes_[i].name == name) return ArrayId{static_cast<std::uint32_t>(i)};
  shapes_.push_back(ArrayShape{std::move(name), std::move(declaredDims)});
  return ArrayId{static_cast<std::uint32_t>(shapes_.size() - 1)};
}

ArrayId ArrayTable::internOrUpdate(std::string name, std::vector<SymRange> declaredDims) {
  if (std::optional<ArrayId> id = lookup(name)) {
    shapes_[id->value].declaredDims = std::move(declaredDims);
    return *id;
  }
  return intern(std::move(name), std::move(declaredDims));
}

std::optional<ArrayId> ArrayTable::lookup(std::string_view name) const {
  for (std::size_t i = 0; i < shapes_.size(); ++i)
    if (shapes_[i].name == name) return ArrayId{static_cast<std::uint32_t>(i)};
  return std::nullopt;
}

bool Region::hasUnknownDim() const {
  return std::any_of(dims.begin(), dims.end(), [](const SymRange& r) { return r.isUnknown(); });
}

Pred Region::validity() const {
  Pred p = Pred::makeTrue();
  for (const SymRange& r : dims) p = p && r.validity();
  return p;
}

Region Region::substituted(VarId v, const SymExpr& r) const {
  Region out{array, {}};
  out.dims.reserve(dims.size());
  for (const SymRange& d : dims) out.dims.push_back(d.substituted(v, r));
  return out;
}

Region Region::substituted(const std::map<VarId, SymExpr>& r) const {
  Region out{array, {}};
  out.dims.reserve(dims.size());
  for (const SymRange& d : dims) out.dims.push_back(d.substituted(r));
  return out;
}

bool Region::containsVar(VarId v) const {
  return std::any_of(dims.begin(), dims.end(),
                     [&](const SymRange& r) { return r.containsVar(v); });
}

void Region::collectVars(std::vector<VarId>& out) const {
  for (const SymRange& d : dims) d.collectVars(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::optional<std::set<std::vector<std::int64_t>>> Region::enumerate(
    const Binding& binding, std::size_t maxCount) const {
  std::vector<std::vector<std::int64_t>> perDim;
  std::size_t total = 1;
  for (const SymRange& d : dims) {
    auto vals = d.enumerate(binding, maxCount);
    if (!vals) return std::nullopt;
    if (vals->empty()) return std::set<std::vector<std::int64_t>>{};
    total *= vals->size();
    if (total > maxCount) return std::nullopt;
    perDim.push_back(std::move(*vals));
  }
  std::set<std::vector<std::int64_t>> out;
  std::vector<std::size_t> idx(perDim.size(), 0);
  while (true) {
    std::vector<std::int64_t> tuple(perDim.size());
    for (std::size_t k = 0; k < perDim.size(); ++k) tuple[k] = perDim[k][idx[k]];
    out.insert(std::move(tuple));
    std::size_t k = 0;
    for (; k < perDim.size(); ++k) {
      if (++idx[k] < perDim[k].size()) break;
      idx[k] = 0;
    }
    if (k == perDim.size()) break;
    if (perDim.empty()) break;
  }
  if (perDim.empty()) out.insert({});
  return out;
}

std::string Region::str(const SymbolTable& symtab, const ArrayTable& arrays) const {
  std::string out = arrays.name(array) + "(";
  for (int i = 0; i < rank(); ++i) {
    if (i) out += ", ";
    out += dims[i].str(symtab);
  }
  out += ")";
  return out;
}

}  // namespace panorama
