// The expansion function of §4.1: given a GAR parameterized by a loop index
// i with l <= i <= u, produce the union over all iterations.
//
//   * i-bounds are solved from the guard (unit clauses with ±1 coefficient,
//     or constant-divisible coefficients); max/min of competing bounds are
//     compiled into ordering-case guards, as everywhere else.
//   * A region dimension containing i is rewritten exactly when it is a
//     point moving affinely (yielding a strided range) or a unit-step
//     interval whose sweep is provably contiguous; otherwise the dimension
//     is marked Ω.
//   * Guard content about i that cannot be turned into interval bounds
//     (disequalities, disjunctions, non-affine atoms) is dropped and the
//     result tainted with Δ — a sound widening.
#include <algorithm>

#include "panorama/region/gar.h"

namespace panorama {

namespace {

CmpCtx ctxWith(const CmpCtx& ctx, const Pred& p) {
  ConstraintSet cs = ctx.context();
  ConstraintSet units = p.unitConstraints();
  for (const LinearConstraint& c : units.constraints()) cs.add(c);
  return ctx.withContext(std::move(cs));
}

struct ExtractedBounds {
  std::vector<SymExpr> lowers;  // candidate lower bounds on i (includes loop lo)
  std::vector<SymExpr> uppers;  // candidate upper bounds on i (includes loop up)
  Pred residual;                // guard clauses free of i
  bool inexact = false;         // some i-content was dropped (Δ)
  bool infeasible = false;      // an i-equation has no integer solution
};

/// Splits the guard into interval bounds on `i` plus the i-free residue.
ExtractedBounds extractIndexBounds(const Pred& guard, VarId i, bool allowBounds) {
  ExtractedBounds out;
  out.residual = guard.isUnknown() ? Pred::makeUnknown() : Pred::makeTrue();
  for (const Disjunct& clause : guard.clauses()) {
    bool mentionsI = false;
    for (const Atom& a : clause.atoms) mentionsI = mentionsI || a.containsVar(i);
    if (!mentionsI) {
      Pred keep;
      keep = Pred::makeTrue();
      for (const Atom& a : clause.atoms) {
        // Rebuild the clause as a Pred (or of atoms).
        keep = (&a == &clause.atoms.front()) ? Pred::atom(a) : (keep || Pred::atom(a));
      }
      out.residual = out.residual && keep;
      continue;
    }
    if (clause.atoms.size() != 1 || !allowBounds) {
      out.inexact = true;  // i hides in a disjunction: drop, taint
      continue;
    }
    const Atom& a = clause.atoms[0];
    if (a.kind() != Atom::Kind::Rel || !a.expr().isAffine()) {
      out.inexact = true;
      continue;
    }
    const std::int64_t coef = a.expr().affineCoeff(i);
    SymExpr rest = a.expr() - SymExpr::variable(i).mulConst(coef);  // a*i + rest
    switch (a.op()) {
      case RelOp::LE:
        if (coef == 1) {
          out.uppers.push_back(-rest);  // i <= -rest
        } else if (coef == -1) {
          out.lowers.push_back(rest);  // i >= rest
        } else if (auto rc = rest.constantValue()) {
          // a*i + c <= 0 with |a| > 1: floor/ceil on the constant.
          if (coef > 0) {
            std::int64_t q = -*rc >= 0 ? -*rc / coef : -((*rc + coef - 1) / coef);
            out.uppers.push_back(SymExpr::constant(q));  // i <= floor(-c/a)
          } else {
            std::int64_t a2 = -coef;
            std::int64_t q = *rc >= 0 ? (*rc + a2 - 1) / a2 : -((-*rc) / a2);
            out.lowers.push_back(SymExpr::constant(q));  // i >= ceil(c/-a)
          }
        } else {
          out.inexact = true;
        }
        break;
      case RelOp::EQ:
        if (coef == 1 || coef == -1) {
          SymExpr sol = coef == 1 ? -rest : rest;
          out.lowers.push_back(sol);
          out.uppers.push_back(std::move(sol));
        } else if (auto rc = rest.constantValue()) {
          if (*rc % coef != 0) {
            out.infeasible = true;  // no integer i satisfies the equation
            return out;
          }
          SymExpr sol = SymExpr::constant(-*rc / coef);
          out.lowers.push_back(sol);
          out.uppers.push_back(std::move(sol));
        } else {
          out.inexact = true;
        }
        break;
      case RelOp::NE:
        out.inexact = true;  // punching a hole in the interval: widen
        break;
      case RelOp::RLT:
      case RelOp::RLE:
      case RelOp::REQ:
      case RelOp::RNE:
        out.inexact = true;  // a real comparison cannot bound an integer index
        break;
    }
  }
  return out;
}

/// Expands one dimension that depends on `i`, with effective index interval
/// [L, U] (step `st`). Returns nullopt for Ω.
std::optional<SymRange> expandDim(const SymRange& dim, VarId i, const SymExpr& L,
                                  const SymExpr& U, const SymExpr& st, const CmpCtx& ctx) {
  if (dim.step.containsVar(i)) return std::nullopt;
  if (!dim.lo.isAffine() || !dim.up.isAffine()) return std::nullopt;
  const std::int64_t al = dim.lo.affineCoeff(i);
  const std::int64_t au = dim.up.affineCoeff(i);

  if (dim.isPoint()) {
    // Moving point a*i + b: an arithmetic progression with step |a|*st.
    const std::int64_t a = al;
    if (a == 0) return std::nullopt;  // i in a nonlinear disguise
    auto sc = st.constantValue();
    if (!sc || *sc <= 0) return std::nullopt;
    SymExpr Ueff = U;
    if (a < 0 && *sc != 1) {
      // A descending progression anchors at the *last* iterate, which must
      // sit on the iteration grid (an ascending one anchors at L and its
      // upper bound merely clips).
      SymExpr span = U - L;
      if (!span.divExact(*sc).has_value()) {
        auto spanC = span.constantValue();
        if (!spanC || *spanC < 0) return std::nullopt;
        Ueff = L + (*spanC / *sc) * *sc;
      }
    }
    SymExpr atL = dim.lo.substitute(i, L);
    SymExpr atU = dim.lo.substitute(i, Ueff);
    SymExpr step = st.mulConst(a > 0 ? a : -a);
    if (a > 0) return SymRange{std::move(atL), std::move(atU), std::move(step)};
    return SymRange{std::move(atU), std::move(atL), std::move(step)};
  }

  // Sweeping interval: handled exactly for unit element step only, and for
  // non-unit loop steps only when U is provably on the iteration grid (else
  // substituting i := U would overshoot the last real iterate).
  if (!(dim.step == SymExpr::constant(1))) return std::nullopt;
  if (auto sc = st.constantValue(); sc && *sc != 1 && !(U - L).divExact(*sc).has_value())
    return std::nullopt;
  if (!st.constantValue().has_value()) return std::nullopt;

  // Per-iteration validity and inter-iteration contiguity, proven with i as
  // a universally quantified symbol bounded by [L, U].
  ConstraintSet cs = ctx.context();
  SymExpr I = SymExpr::variable(i);
  if (!cs.addExprLE0(L - I) || !cs.addExprLE0(I - U)) return std::nullopt;
  CmpCtx ictx = ctx.withContext(cs);
  if (ictx.le(dim.lo, dim.up) != Truth::True) return std::nullopt;

  ConstraintSet cs2 = ctx.context();
  if (!cs2.addExprLE0(L - I) || !cs2.addExprLE0(I + st - U)) return std::nullopt;
  CmpCtx cctx = ctx.withContext(cs2);
  SymExpr loNext = dim.lo.substitute(i, I + st);
  SymExpr upNext = dim.up.substitute(i, I + st);
  if (cctx.le(loNext, dim.up + 1) != Truth::True) return std::nullopt;
  if (cctx.le(dim.lo, upNext + 1) != Truth::True) return std::nullopt;

  SymExpr newLo = al >= 0 ? dim.lo.substitute(i, L) : dim.lo.substitute(i, U);
  SymExpr newUp = au >= 0 ? dim.up.substitute(i, U) : dim.up.substitute(i, L);
  return SymRange{std::move(newLo), std::move(newUp), SymExpr::constant(1)};
}

void expandGar(const Gar& gar, const LoopBounds& bounds, const CmpCtx& ctx, GarList& out,
               int splitDepth = 4);

/// Pre-pass: [C1 ∨ C2, R] = [C1, R] ∪ [C2, R], so a disjunctive clause (or a
/// unit disequality, split as < ∨ >) that mentions the index can be expanded
/// exactly piece by piece instead of degrading to Δ. This is what keeps the
/// Figure 5 derivation exact.
bool splitIndexClause(const Gar& gar, VarId i, const LoopBounds& bounds, const CmpCtx& ctx,
                      GarList& out, int splitDepth) {
  if (splitDepth <= 0 || gar.guard().isUnknown()) return false;
  const auto& clauses = gar.guard().clauses();
  for (std::size_t k = 0; k < clauses.size(); ++k) {
    const Disjunct& clause = clauses[k];
    bool mentionsI = false;
    for (const Atom& a : clause.atoms) mentionsI = mentionsI || a.containsVar(i);
    if (!mentionsI) continue;
    std::vector<Atom> branches;
    if (clause.atoms.size() > 1 && clause.atoms.size() <= 4) {
      branches = clause.atoms;
    } else if (clause.atoms.size() == 1 && clause.atoms[0].kind() == Atom::Kind::Rel &&
               clause.atoms[0].op() == RelOp::NE) {
      const SymExpr& e = clause.atoms[0].expr();
      branches.push_back(Atom::rel(e + 1, RelOp::LE));   // e < 0
      branches.push_back(Atom::rel(-e + 1, RelOp::LE));  // e > 0
    } else {
      continue;
    }
    // Rebuild the guard without this clause.
    Pred rest = Pred::makeTrue();
    for (std::size_t m = 0; m < clauses.size(); ++m) {
      if (m == k) continue;
      Pred cl = Pred::makeFalse();
      for (const Atom& a : clauses[m].atoms) cl = cl || Pred::atom(a);
      rest = rest && cl;
    }
    for (const Atom& branch : branches) {
      Pred guard = rest && Pred::atom(branch);
      guard.simplify();
      if (guard.isFalse()) continue;
      expandGar(Gar::make(std::move(guard), gar.region(), ctx.psi()), bounds, ctx, out,
                 splitDepth - 1);
    }
    return true;
  }
  return false;
}

void expandGar(const Gar& gar, const LoopBounds& bounds, const CmpCtx& ctx, GarList& out,
               int splitDepth) {
  VarId i = bounds.index;
  if (gar.guard().containsVar(i) && splitIndexClause(gar, i, bounds, ctx, out, splitDepth))
    return;

  // Normalize the loop direction. The iteration set of (lo, up, st) is
  // anchored at lo; a reversed loop must stay anchored at its own first
  // iterate, so flipping is exact only when (lo - up) sits on the grid.
  SymExpr lo = bounds.lo;
  SymExpr up = bounds.up;
  SymExpr st = bounds.step;
  bool inexact = false;
  if (auto sc = st.constantValue()) {
    if (*sc == 0) {
      out.add(Gar::omega(gar.array(), gar.region().rank()));
      return;
    }
    if (*sc < 0) {
      const std::int64_t mag = -*sc;
      SymExpr span = lo - up;  // >= 0 on any executed iteration
      std::swap(lo, up);
      st = SymExpr::constant(mag);
      if (mag != 1 && !span.divExact(mag).has_value()) {
        if (auto spanC = span.constantValue()) {
          // Anchor at the true smallest iterate lo0 - floor(span/st)*st.
          std::int64_t offs = (*spanC % mag + mag) % mag;
          lo = lo + offs;
        } else {
          st = SymExpr::constant(1);  // widen to the full interval
          inexact = true;
        }
      }
    }
  } else {
    // Symbolic step: iteration grid unknowable; widen to the full interval.
    st = SymExpr::constant(1);
    inexact = true;
  }
  const bool unitStep = st == SymExpr::constant(1);

  // Index-free GARs still occur only when the loop executes at least once.
  if (!gar.containsVar(i)) {
    Truth runs = ctx.le(lo, up);
    if (runs == Truth::False) return;
    if (runs == Truth::True)
      out.add(gar);
    else
      out.add(gar.withGuard(Pred::atom(Atom::le(lo, up))));
    return;
  }

  ExtractedBounds eb = extractIndexBounds(gar.guard(), i, /*allowBounds=*/unitStep);
  if (eb.infeasible) return;  // the guard admits no iteration at all
  // With a non-unit step, guard-extracted bounds may fall off the iteration
  // grid; extractIndexBounds already dropped them (allowBounds=false) and
  // flagged the loss.
  inexact = inexact || eb.inexact;

  std::vector<SymExpr> lowers = std::move(eb.lowers);
  std::vector<SymExpr> uppers = std::move(eb.uppers);
  lowers.insert(lowers.begin(), lo);
  uppers.insert(uppers.begin(), up);
  if (lowers.size() * uppers.size() > 9) {
    lowers.assign(1, lo);  // too many competing bounds: widen to the loop's
    uppers.assign(1, up);
    inexact = true;
  }

  for (const SymExpr& L : lowers) {
    for (const SymExpr& U : uppers) {
      // Case guard: L is the maximal lower bound, U the minimal upper bound.
      Pred caseGuard = eb.residual;
      bool dead = false;
      for (const SymExpr& L2 : lowers) {
        if (&L2 == &L) continue;
        Truth t = ctx.ge(L, L2);
        if (t == Truth::False) dead = true;
        if (t == Truth::Unknown) caseGuard = caseGuard && Pred::atom(Atom::ge(L, L2));
      }
      for (const SymExpr& U2 : uppers) {
        if (&U2 == &U) continue;
        Truth t = ctx.le(U, U2);
        if (t == Truth::False) dead = true;
        if (t == Truth::Unknown) caseGuard = caseGuard && Pred::atom(Atom::le(U, U2));
      }
      if (dead) continue;
      // Nonemptiness of the iteration interval.
      Truth nonempty = ctx.le(L, U);
      if (nonempty == Truth::False) continue;
      if (nonempty == Truth::Unknown) caseGuard = caseGuard && Pred::atom(Atom::le(L, U));
      caseGuard.simplify();
      if (caseGuard.isFalse()) continue;

      CmpCtx ectx = ctxWith(ctx, caseGuard);
      Region region{gar.array(), {}};
      int dimsWithI = 0;
      for (const SymRange& d : gar.region().dims)
        if (d.containsVar(i)) ++dimsWithI;
      for (const SymRange& d : gar.region().dims) {
        if (!d.containsVar(i)) {
          region.dims.push_back(d);
          continue;
        }
        if (dimsWithI > 1) {  // §4.1: i in several dimensions ⇒ all Ω
          region.dims.push_back(SymRange::unknown());
          continue;
        }
        auto expanded = expandDim(d, i, L, U, st, ectx);
        region.dims.push_back(expanded ? std::move(*expanded) : SymRange::unknown());
      }
      Pred guard = inexact ? caseGuard && Pred::makeUnknown() : std::move(caseGuard);
      out.add(Gar::make(std::move(guard), std::move(region), ctx.psi()));
    }
  }
}

}  // namespace

GarList expandByIndex(const GarList& list, const LoopBounds& bounds, const CmpCtx& ctx) {
  GarList out;
  for (const Gar& g : list.gars()) expandGar(g, bounds, ctx, out);
  simplifyGarList(out, ctx, nullptr);
  return out;
}

}  // namespace panorama
