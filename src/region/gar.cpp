#include "panorama/region/gar.h"

#include <algorithm>

namespace panorama {

Gar Gar::make(Pred guard, Region region, const PsiDims& psi) {
  Gar g;
  g.guard_ = std::move(guard) && region.validity();
  // ψ-guarded pieces carry their element-coordinate bounds explicitly, so
  // guard-level (un)satisfiability checks see the region extent (the same
  // discipline §3 imposes for range-validity conditions).
  const VarId psis[2] = {psi.dim1, psi.dim2};
  for (int d = 0; d < 2; ++d) {
    VarId psi = psis[d];
    if (psi.isValid() && g.guard_.containsVar(psi) &&
        static_cast<int>(region.dims.size()) > d && !region.dims[d].isUnknown()) {
      SymExpr p = SymExpr::variable(psi);
      g.guard_ = g.guard_ && Pred::atom(Atom::le(region.dims[d].lo, p)) &&
                 Pred::atom(Atom::le(p, region.dims[d].up));
    }
  }
  g.guard_.simplify();
  g.region_ = std::move(region);
  return g;
}

Gar Gar::omega(ArrayId array, int rank) {
  Gar g;
  g.guard_ = Pred::makeUnknown();
  g.region_ = Region{array, std::vector<SymRange>(std::max(rank, 1), SymRange::unknown())};
  return g;
}

Gar Gar::substituted(VarId v, const SymExpr& r) const {
  Gar g;
  g.guard_ = guard_.substituted(v, r);
  g.region_ = region_.substituted(v, r);
  return g;
}

Gar Gar::substituted(const std::map<VarId, SymExpr>& r) const {
  Gar g;
  g.guard_ = guard_.substituted(r);
  g.region_ = region_.substituted(r);
  return g;
}

bool Gar::containsVar(VarId v) const {
  return guard_.containsVar(v) || region_.containsVar(v);
}

void Gar::collectVars(std::vector<VarId>& out) const {
  guard_.collectVars(out);
  region_.collectVars(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

Gar Gar::withGuard(const Pred& p) const {
  Gar g;
  g.guard_ = guard_ && p;
  g.guard_.simplify();
  g.region_ = region_;
  return g;
}

std::optional<std::set<std::vector<std::int64_t>>> Gar::enumerate(
    const Binding& binding, std::size_t maxCount) const {
  auto g = guard_.evaluate(binding);
  if (!g) return std::nullopt;
  if (!*g) return std::set<std::vector<std::int64_t>>{};
  return region_.enumerate(binding, maxCount);
}

std::string Gar::str(const SymbolTable& symtab, const ArrayTable& arrays) const {
  // Built by append: operator+ chains over temporaries trip GCC 12's
  // spurious -Wrestrict on the inlined char_traits copy (PR 105329).
  std::string out = "[";
  out += guard_.str(symtab);
  out += ", ";
  out += region_.str(symtab, arrays);
  out += ']';
  return out;
}

Gar Gar::fromParts(Pred guard, Region region) {
  Gar g;
  g.guard_ = std::move(guard);
  g.region_ = std::move(region);
  return g;
}

GarList GarList::single(Gar g) {
  GarList l;
  l.add(std::move(g));
  return l;
}

void GarList::add(Gar g) {
  if (g.isEmpty()) return;
  gars_.push_back(std::move(g));
}

void GarList::append(const GarList& other) {
  for (const Gar& g : other.gars_) add(g);
}

GarList GarList::withGuard(const Pred& p) const {
  GarList out;
  if (p.isFalse()) return out;
  for (const Gar& g : gars_) out.add(g.withGuard(p));
  return out;
}

GarList GarList::substituted(VarId v, const SymExpr& r) const {
  GarList out;
  for (const Gar& g : gars_) out.add(g.substituted(v, r));
  return out;
}

GarList GarList::substituted(const std::map<VarId, SymExpr>& r) const {
  GarList out;
  for (const Gar& g : gars_) out.add(g.substituted(r));
  return out;
}

bool GarList::containsVar(VarId v) const {
  return std::any_of(gars_.begin(), gars_.end(),
                     [&](const Gar& g) { return g.containsVar(v); });
}

std::vector<ArrayId> GarList::arrays() const {
  std::vector<ArrayId> out;
  for (const Gar& g : gars_) out.push_back(g.array());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

GarList GarList::forArray(ArrayId array) const {
  GarList out;
  for (const Gar& g : gars_)
    if (g.array() == array) out.add(g);
  return out;
}

std::string GarList::str(const SymbolTable& symtab, const ArrayTable& arrays) const {
  if (gars_.empty()) return "{}";
  std::string out;
  for (std::size_t i = 0; i < gars_.size(); ++i) {
    if (i) out += " U ";
    out += gars_[i].str(symtab, arrays);
  }
  return out;
}

std::optional<std::set<std::vector<std::int64_t>>> GarList::enumerate(
    ArrayId array, const Binding& binding, std::size_t maxCount) const {
  std::set<std::vector<std::int64_t>> out;
  for (const Gar& g : gars_) {
    if (g.array() != array) continue;
    auto elems = g.enumerate(binding, maxCount);
    if (!elems) return std::nullopt;
    out.insert(elems->begin(), elems->end());
    if (out.size() > maxCount) return std::nullopt;
  }
  return out;
}

}  // namespace panorama
