#include "panorama/region/range.h"

namespace panorama {

SymRange SymRange::point(SymExpr e) {
  SymRange r;
  r.lo = e;
  r.up = std::move(e);
  return r;
}

SymRange SymRange::unknown() {
  SymRange r;
  r.lo = SymExpr::poisoned();
  r.up = SymExpr::poisoned();
  return r;
}

Pred SymRange::validity() const {
  if (isUnknown()) return Pred::makeUnknown();
  if (isPoint()) return Pred::makeTrue();
  return Pred::atom(Atom::le(lo, up));
}

SymRange SymRange::substituted(VarId v, const SymExpr& r) const {
  return {lo.substitute(v, r), up.substitute(v, r), step.substitute(v, r)};
}

SymRange SymRange::substituted(const std::map<VarId, SymExpr>& r) const {
  return {lo.substitute(r), up.substitute(r), step.substitute(r)};
}

bool SymRange::containsVar(VarId v) const {
  return lo.containsVar(v) || up.containsVar(v) || step.containsVar(v);
}

void SymRange::collectVars(std::vector<VarId>& out) const {
  lo.collectVars(out);
  up.collectVars(out);
  step.collectVars(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::optional<std::vector<std::int64_t>> SymRange::enumerate(const Binding& binding,
                                                             std::size_t maxCount) const {
  if (isUnknown()) return std::nullopt;
  auto l = lo.evaluate(binding);
  auto u = up.evaluate(binding);
  auto s = step.evaluate(binding);
  if (!l || !u || !s || *s <= 0) return std::nullopt;
  std::vector<std::int64_t> out;
  for (std::int64_t v = *l; v <= *u; v += *s) {
    if (out.size() >= maxCount) return std::nullopt;
    out.push_back(v);
  }
  return out;
}

std::string SymRange::str(const SymbolTable& symtab) const {
  if (isUnknown()) return "?";
  if (isPoint()) return lo.str(symtab);
  // Built by append: operator+ chains over temporaries trip GCC 12's
  // spurious -Wrestrict on the inlined char_traits copy (PR 105329).
  std::string out = lo.str(symtab);
  out += ':';
  out += up.str(symtab);
  if (!(step == SymExpr::constant(1))) {
    out += ':';
    out += step.str(symtab);
  }
  return out;
}

}  // namespace panorama
