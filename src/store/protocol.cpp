#include "panorama/store/protocol.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace panorama::store {

namespace {

void setError(std::string* error, std::string what) {
  if (error) *error = std::move(what);
}

std::string errnoString() { return std::strerror(errno); }

/// write(2) until every byte is out (or a real error).
bool writeAll(int fd, const char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      setError(error, "write failed: " + errnoString());
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// read(2) until `n` bytes arrive. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on error (including EOF mid-buffer).
int readAll(int fd, char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      setError(error, "read failed: " + errnoString());
      return -1;
    }
    if (r == 0) {
      if (off == 0) return 0;
      setError(error, "connection closed mid-frame");
      return -1;
    }
    off += static_cast<std::size_t>(r);
  }
  return 1;
}

/// AF_UNIX sun_path is a short fixed buffer; refuse paths that don't fit
/// instead of silently truncating.
bool fillAddress(const std::string& path, sockaddr_un& addr, std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    setError(error, path + ": socket path too long for AF_UNIX (max " +
                        std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool writeFrame(int fd, std::string_view payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    setError(error, "frame payload exceeds " + std::to_string(kMaxFrameBytes) + " bytes");
    return false;
  }
  char len[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int k = 0; k < 4; ++k) len[k] = static_cast<char>((n >> (8 * k)) & 0xff);
  return writeAll(fd, len, sizeof(len), error) && writeAll(fd, payload.data(), payload.size(), error);
}

FrameStatus readFrame(int fd, std::string& payload, std::string* error) {
  char len[4];
  int got = readAll(fd, len, sizeof(len), error);
  if (got == 0) return FrameStatus::Eof;
  if (got < 0) return FrameStatus::Error;
  std::uint32_t n = 0;
  for (int k = 0; k < 4; ++k)
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(len[k])) << (8 * k);
  if (n > kMaxFrameBytes) {
    setError(error, "frame length " + std::to_string(n) + " exceeds the protocol maximum");
    return FrameStatus::Error;
  }
  payload.assign(n, '\0');
  if (n > 0 && readAll(fd, payload.data(), n, error) != 1) return FrameStatus::Error;
  return FrameStatus::Ok;
}

int listenUnixSocket(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fillAddress(path, addr, error)) return -1;

  // Replace a stale socket file from a previous daemon; refuse to unlink
  // anything that is not a socket.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      setError(error, path + ": exists and is not a socket");
      return -1;
    }
    ::unlink(path.c_str());
  }

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, path + ": cannot create socket: " + errnoString());
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    setError(error, path + ": cannot bind: " + errnoString());
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    setError(error, path + ": cannot listen: " + errnoString());
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connectUnixSocket(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fillAddress(path, addr, error)) return -1;
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, path + ": cannot create socket: " + errnoString());
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    setError(error, path + ": cannot connect: " + errnoString());
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace panorama::store
