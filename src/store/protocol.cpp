#include "panorama/store/protocol.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace panorama::store {

namespace {

void setError(std::string* error, std::string what) {
  if (error) *error = std::move(what);
}

std::string errnoString() { return std::strerror(errno); }

/// With SO_SNDTIMEO/SO_RCVTIMEO armed (setSocketTimeout), an expired wait
/// surfaces as EAGAIN/EWOULDBLOCK — name it for the caller's diagnostic.
bool isTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

/// write(2) until every byte is out (or a real error).
bool writeAll(int fd, const char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      setError(error, isTimeout(errno) ? "timed out writing to the peer"
                                       : "write failed: " + errnoString());
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// read(2) until `n` bytes arrive. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on error (including EOF mid-buffer and expired timeouts).
int readAll(int fd, char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      setError(error, isTimeout(errno) ? "timed out waiting for the peer"
                                       : "read failed: " + errnoString());
      return -1;
    }
    if (r == 0) {
      if (off == 0) return 0;
      setError(error, "connection closed mid-frame");
      return -1;
    }
    off += static_cast<std::size_t>(r);
  }
  return 1;
}

/// AF_UNIX sun_path is a short fixed buffer; refuse paths that don't fit
/// instead of silently truncating.
bool fillAddress(const std::string& path, sockaddr_un& addr, std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    setError(error, path + ": socket path too long for AF_UNIX (max " +
                        std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool writeFrame(int fd, std::string_view payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    setError(error, "frame payload exceeds " + std::to_string(kMaxFrameBytes) + " bytes");
    return false;
  }
  char len[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int k = 0; k < 4; ++k) len[k] = static_cast<char>((n >> (8 * k)) & 0xff);
  return writeAll(fd, len, sizeof(len), error) && writeAll(fd, payload.data(), payload.size(), error);
}

FrameStatus readFrame(int fd, std::string& payload, std::string* error) {
  char len[4];
  int got = readAll(fd, len, sizeof(len), error);
  if (got == 0) return FrameStatus::Eof;
  if (got < 0) return FrameStatus::Error;
  std::uint32_t n = 0;
  for (int k = 0; k < 4; ++k)
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(len[k])) << (8 * k);
  if (n > kMaxFrameBytes) {
    // Drain the oversized payload so the stream stays framed; the caller can
    // answer with a structured error and keep the connection alive.
    char sink[4096];
    std::uint64_t left = n;
    while (left > 0) {
      const std::size_t chunk = left < sizeof(sink) ? static_cast<std::size_t>(left) : sizeof(sink);
      if (readAll(fd, sink, chunk, error) != 1) return FrameStatus::Error;
      left -= chunk;
    }
    setError(error, "frame length " + std::to_string(n) + " exceeds the protocol maximum of " +
                        std::to_string(kMaxFrameBytes) + " bytes");
    return FrameStatus::TooLarge;
  }
  payload.assign(n, '\0');
  if (n > 0 && readAll(fd, payload.data(), n, error) != 1) return FrameStatus::Error;
  return FrameStatus::Ok;
}

int listenUnixSocket(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fillAddress(path, addr, error)) return -1;

  // Replace a stale socket file from a previous daemon; refuse to unlink
  // anything that is not a socket.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      setError(error, path + ": exists and is not a socket");
      return -1;
    }
    ::unlink(path.c_str());
  }

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, path + ": cannot create socket: " + errnoString());
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    setError(error, path + ": cannot bind: " + errnoString());
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    setError(error, path + ": cannot listen: " + errnoString());
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connectUnixSocket(const std::string& path, std::string* error, int timeoutMs) {
  sockaddr_un addr;
  if (!fillAddress(path, addr, error)) return -1;
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, path + ": cannot create socket: " + errnoString());
    return -1;
  }
  if (timeoutMs <= 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      setError(error, path + ": cannot connect: " + errnoString());
      ::close(fd);
      return -1;
    }
    return fd;
  }

  // Bounded connect: go non-blocking, start the connect, poll for the
  // result, then restore the original flags so later frame I/O blocks (or
  // obeys setSocketTimeout) as usual.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    setError(error, path + ": cannot set non-blocking: " + errnoString());
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      setError(error, path + ": cannot connect: " + errnoString());
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeoutMs);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      setError(error, ready == 0 ? path + ": timed out connecting after " +
                                       std::to_string(timeoutMs) + " ms"
                                 : path + ": poll failed: " + errnoString());
      ::close(fd);
      return -1;
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 || soError != 0) {
      errno = soError != 0 ? soError : errno;
      setError(error, path + ": cannot connect: " + errnoString());
      ::close(fd);
      return -1;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    setError(error, path + ": cannot restore socket flags: " + errnoString());
    ::close(fd);
    return -1;
  }
  return fd;
}

bool setSocketTimeout(int fd, int timeoutMs, std::string* error) {
  timeval tv{};
  if (timeoutMs > 0) {
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeoutMs % 1000) * 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    setError(error, "cannot set socket timeout: " + errnoString());
    return false;
  }
  return true;
}

}  // namespace panorama::store
