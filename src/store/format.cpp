#include "panorama/store/format.h"

#include <cstdio>
#include <cstring>

namespace panorama::store {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void Writer::u32(std::uint32_t v) {
  for (int k = 0; k < 4; ++k) bytes_.push_back(static_cast<char>((v >> (8 * k)) & 0xff));
}

void Writer::u64(std::uint64_t v) {
  for (int k = 0; k < 8; ++k) bytes_.push_back(static_cast<char>((v >> (8 * k)) & 0xff));
}

void Writer::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(std::string_view s) {
  u64(s.size());
  bytes_.append(s.data(), s.size());
}

void Reader::fail(std::string why) {
  if (!ok_) return;
  ok_ = false;
  error_ = std::move(why);
}

bool Reader::take(std::size_t n, const char** out) {
  if (!ok_) return false;
  if (bytes_.size() - pos_ < n) {
    fail("truncated snapshot payload");
    return false;
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t Reader::u8() {
  const char* p = nullptr;
  if (!take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint32_t Reader::u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[k])) << (8 * k);
  return v;
}

std::uint64_t Reader::u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[k])) << (8 * k);
  return v;
}

double Reader::f64() {
  std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  std::uint64_t n = count(1, "string");
  const char* p = nullptr;
  if (!take(static_cast<std::size_t>(n), &p)) return {};
  return std::string(p, static_cast<std::size_t>(n));
}

std::uint64_t Reader::count(std::size_t elemBytes, std::string_view what) {
  std::uint64_t n = u64();
  if (!ok_) return 0;
  const std::uint64_t remaining = bytes_.size() - pos_;
  if (elemBytes != 0 && n > remaining / elemBytes) {
    fail("corrupted snapshot: implausible " + std::string(what) + " count");
    return 0;
  }
  return n;
}

namespace {

void packHeader(std::string& out, const std::string& payload, std::uint32_t schemaVersion) {
  Writer w;
  w.u32(kMagic);
  w.u32(schemaVersion);
  w.u64(payload.size());
  w.u64(fnv1a(payload));
  out = w.bytes();
}

}  // namespace

StoreResult writeSnapshotFile(const std::string& path, const std::string& payload,
                              std::uint32_t schemaVersion) {
  StoreResult out;
  std::string header;
  packHeader(header, payload, schemaVersion);

  // Temp-then-rename in the destination directory: a crash mid-write leaves
  // either the old snapshot or none, never a torn one.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    out.error = path + ": cannot open for writing";
    return out;
  }
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
            std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  ok = (std::fflush(f) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    out.error = path + ": write failed";
    return out;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    out.error = path + ": cannot replace snapshot (rename failed)";
    return out;
  }
  out.ok = true;
  return out;
}

StoreResult readSnapshotFile(const std::string& path, std::string& payload,
                             std::uint32_t& version) {
  StoreResult out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    out.error = path + ": cannot open session snapshot for reading";
    return out;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool readOk = std::ferror(f) == 0;
  std::fclose(f);
  if (!readOk) {
    out.error = path + ": read failed";
    return out;
  }

  if (bytes.size() < kHeaderBytes) {
    out.error = path + ": truncated snapshot (shorter than the header)";
    return out;
  }
  Reader header(std::string_view(bytes).substr(0, kHeaderBytes));
  const std::uint32_t magic = header.u32();
  version = header.u32();
  const std::uint64_t payloadSize = header.u64();
  const std::uint64_t payloadHash = header.u64();
  if (magic != kMagic) {
    out.error = path + ": not a panorama session snapshot (bad magic)";
    return out;
  }
  if (version < kMinSchemaVersion || version > kSchemaVersion) {
    out.error = path + ": unsupported schema version " + std::to_string(version) +
                " (this build reads versions " + std::to_string(kMinSchemaVersion) + ".." +
                std::to_string(kSchemaVersion) + ")";
    return out;
  }
  const std::uint64_t actual = bytes.size() - kHeaderBytes;
  if (actual < payloadSize) {
    out.error = path + ": truncated snapshot (header claims " + std::to_string(payloadSize) +
                " payload bytes, file has " + std::to_string(actual) + ")";
    return out;
  }
  if (actual > payloadSize) {
    out.error = path + ": corrupted snapshot (trailing bytes after the payload)";
    return out;
  }
  payload = bytes.substr(kHeaderBytes);
  if (fnv1a(payload) != payloadHash) {
    out.error = path + ": corrupted snapshot (integrity hash mismatch)";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace panorama::store
