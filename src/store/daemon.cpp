#include "panorama/store/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "panorama/obs/metrics.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/arena.h"
#include "panorama/predicate/predicate.h"
#include "panorama/store/protocol.h"
#include "panorama/support/json.h"
#include "panorama/support/memo_cache.h"
#include "panorama/symbolic/arena.h"

namespace panorama::store {

namespace {

using support::JsonValue;
using Clock = std::chrono::steady_clock;

std::uint64_t usSince(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
}

/// Echo the id the way the client sent it: numbers verbatim (integral
/// doubles without an exponent), strings as JSON strings, anything else —
/// including an absent id — as 0.
std::string renderId(const JsonValue* id) {
  if (id && id->isString()) {
    std::string out = "\"";
    support::appendJsonEscaped(out, id->asString());
    out += '"';
    return out;
  }
  const double v = (id && id->isNumber()) ? id->asNumber() : 0.0;
  const long long n = static_cast<long long>(v);
  if (static_cast<double>(n) == v) return std::to_string(n);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string errorResponse(const std::string& id, const std::string& message) {
  std::string out = "{\"id\":" + id + ",\"ok\":false,\"error\":\"";
  support::appendJsonEscaped(out, message);
  out += "\"}";
  return out;
}

bool boolField(const JsonValue& req, std::string_view key) {
  const JsonValue* v = req.find(key);
  return v != nullptr && v->isBool() && v->asBool();
}

/// Metric names must stay a bounded set no matter what op strings clients
/// send, so only the known ops get their own histograms.
const char* canonicalOp(const std::string& op) {
  static constexpr const char* kKnown[] = {"ping", "submit", "shutdown", "status", "metrics",
                                           "tail"};
  for (const char* k : kKnown)
    if (op == k) return k;
  return "other";
}

void appendCacheJson(std::string& out, const char* name, const QueryCache::Stats& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"hits\":%llu,\"misses\":%llu,\"entries\":%llu,\"hit_rate\":%.4f}", name,
                static_cast<unsigned long long>(s.hits), static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.entries), s.hitRate());
  out += buf;
}

}  // namespace

Daemon::Daemon(std::string socketPath, AnalysisOptions options, DaemonConfig config)
    : socketPath_(std::move(socketPath)),
      options_(options),
      config_(std::move(config)),
      pool_(options_.numThreads),
      eventLog_(config_.eventLogCapacity) {}

Daemon::~Daemon() {
  stop();
  wait();
}

bool Daemon::start(std::string& error) {
  if (!config_.eventLogPath.empty()) {
    eventLogFile_ = std::fopen(config_.eventLogPath.c_str(), "w");
    if (!eventLogFile_) {
      error = config_.eventLogPath + ": cannot open event log file";
      return false;
    }
  }
  listenFd_ = listenUnixSocket(socketPath_, &error);
  if (listenFd_ < 0) {
    if (eventLogFile_) {
      std::fclose(eventLogFile_);
      eventLogFile_ = nullptr;
    }
    return false;
  }
  acceptThread_ = std::thread(&Daemon::acceptLoop, this);
  if (config_.telemetry && (config_.telemetryIntervalMs > 0 || eventLogFile_))
    telemetryThread_ = std::thread(&Daemon::telemetryLoop, this);
  return true;
}

void Daemon::acceptLoop() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listening socket down (or a hard error)
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    clientFds_.push_back(fd);
    obs::MetricsRegistry::global().counter("daemon.clients").add(1);
    const std::uint64_t clientId = nextClientId_.fetch_add(1, std::memory_order_relaxed);
    activeConnections_.fetch_add(1, std::memory_order_relaxed);
    totalConnections_.fetch_add(1, std::memory_order_relaxed);
    handlers_.emplace_back(&Daemon::handleClient, this, fd, clientId);
  }
  ::close(listenFd_);
  ::unlink(socketPath_.c_str());
}

void Daemon::handleClient(int fd, std::uint64_t clientId) {
  if (config_.telemetry)
    eventLog_.append(obs::EventKind::ConnOpen,
                     obs::EventFields().num("client", clientId).take());
  // One session per connection: client-local incremental state on top of
  // the shared arenas/caches/pool.
  Gated local(options_, &pool_);
  std::string payload;
  std::string frameError;
  for (;;) {
    FrameStatus st = readFrame(fd, payload, &frameError);
    if (st == FrameStatus::TooLarge) {
      // The payload was drained, so the stream is still framed: answer with
      // a structured error and keep serving this connection.
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (config_.telemetry)
        eventLog_.append(obs::EventKind::Error, obs::EventFields()
                                                    .num("client", clientId)
                                                    .str("message", frameError)
                                                    .take());
      if (!writeFrame(fd, errorResponse("0", frameError))) break;
      continue;
    }
    // Eof is a clean disconnect; Error means the client died mid-frame.
    // Either way this connection is done — the shared store is untouched
    // (any in-flight submit completed or never started; session state is
    // connection-local and dies with it).
    if (st != FrameStatus::Ok) break;
    bool shutdownRequested = false;
    const std::string response = handleRequest(payload, local, clientId, shutdownRequested);
    if (!writeFrame(fd, response)) break;
    if (shutdownRequested) {
      stop();
      break;
    }
  }
  activeConnections_.fetch_sub(1, std::memory_order_relaxed);
  if (config_.telemetry)
    eventLog_.append(obs::EventKind::ConnClose,
                     obs::EventFields().num("client", clientId).take());
  std::lock_guard<std::mutex> lock(mutex_);
  clientFds_.erase(std::remove(clientFds_.begin(), clientFds_.end(), fd), clientFds_.end());
  ::close(fd);
}

std::string Daemon::handleRequest(const std::string& payload, Gated& local,
                                  std::uint64_t clientId, bool& shutdownRequested) {
  obs::Span span("daemon", "daemon.request");
  obs::MetricsRegistry::global().counter("daemon.requests").add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);

  const Clock::time_point t0 = Clock::now();
  RequestInfo info;
  std::string response;
  std::string parseError;
  std::optional<JsonValue> req = JsonValue::parse(payload, &parseError);
  const std::uint64_t parseUs = usSince(t0);
  if (!req || !req->isObject()) {
    info.error =
        "malformed request: " + (parseError.empty() ? "not a JSON object" : parseError);
    response = errorResponse("0", info.error);
  } else {
    const std::string id = renderId(req->find("id"));
    response = dispatch(*req, id, local, clientId, shutdownRequested, info);
  }

  if (!info.error.empty()) errors_.fetch_add(1, std::memory_order_relaxed);
  if (config_.telemetry) {
    if (!info.error.empty())
      eventLog_.append(obs::EventKind::Error, obs::EventFields()
                                                  .num("client", clientId)
                                                  .str("op", info.op)
                                                  .str("message", info.error)
                                                  .take());
    // Wall time splits into queue-wait (parse + session-gate wait: time the
    // request spent *waiting* to be worked on) and handle time (the rest).
    const std::uint64_t wallUs = usSince(t0);
    const std::uint64_t queueUs = parseUs + info.gateWaitUs;
    const std::uint64_t handleUs = wallUs > queueUs ? wallUs - queueUs : 0;
    auto& registry = obs::MetricsRegistry::global();
    const std::string prefix = std::string("daemon.op.") + info.op;
    registry.histogram(prefix + ".wall_us").observe(wallUs);
    registry.histogram(prefix + ".queue_us").observe(queueUs);
    registry.histogram(prefix + ".handle_us").observe(handleUs);
    if (wallUs / 1000 >= config_.slowMs) {
      slowRequests_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("daemon.slow_requests").add(1);
      eventLog_.append(obs::EventKind::SlowRequest, obs::EventFields()
                                                        .num("client", clientId)
                                                        .str("op", info.op)
                                                        .real("wall_ms", wallUs / 1000.0)
                                                        .take());
    }
  }
  return response;
}

std::string Daemon::dispatch(const JsonValue& req, const std::string& id, Gated& local,
                             std::uint64_t clientId, bool& shutdownRequested,
                             RequestInfo& info) {
  const JsonValue* opField = req.find("op");
  if (!opField || !opField->isString()) {
    info.error = "request has no \"op\" field";
    return errorResponse(id, info.error);
  }
  const std::string& op = opField->asString();
  info.op = canonicalOp(op);

  if (op == "ping") return "{\"id\":" + id + ",\"ok\":true,\"op\":\"ping\"}";

  if (op == "shutdown") {
    shutdownRequested = true;
    return "{\"id\":" + id + ",\"ok\":true,\"op\":\"shutdown\"}";
  }

  if (op == "status") return statusResponse(id);

  if (op == "metrics") {
    // The registry dump is already JSON; splice it in whole.
    return "{\"id\":" + id + ",\"ok\":true,\"op\":\"metrics\",\"registry\":" +
           obs::MetricsRegistry::global().toJson() + "}";
  }

  if (op == "tail") {
    const JsonValue* cursorField = req.find("cursor");
    const JsonValue* maxField = req.find("max");
    const std::uint64_t cursor = (cursorField && cursorField->isNumber() &&
                                  cursorField->asNumber() >= 0)
                                     ? static_cast<std::uint64_t>(cursorField->asNumber())
                                     : 0;
    std::size_t maxEvents = 100;
    if (maxField && maxField->isNumber() && maxField->asNumber() >= 0)
      maxEvents = static_cast<std::size_t>(maxField->asNumber());
    if (maxEvents > 1000) maxEvents = 1000;
    obs::EventLog::Tail t = eventLog_.tail(cursor, maxEvents);
    std::string out = "{\"id\":" + id + ",\"ok\":true,\"op\":\"tail\",\"events\":[";
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      if (i) out += ',';
      out += t.events[i];
    }
    out += "],\"next_cursor\":" + std::to_string(t.nextCursor) +
           ",\"dropped\":" + std::to_string(t.dropped) + "}";
    return out;
  }

  if (op == "submit") {
    const JsonValue* source = req.find("source");
    if (!source || !source->isString()) {
      info.error = "submit needs a string \"source\" field";
      return errorResponse(id, info.error);
    }
    const JsonValue* nameField = req.find("name");
    const std::string name =
        (nameField && nameField->isString()) ? nameField->asString() : "<client>";
    const bool explain = boolField(req, "explain");
    const bool wantStats = boolField(req, "stats");
    // "session": run against a named cross-connection session instead of
    // the connection-local one.
    const JsonValue* sessionKey = req.find("session");
    const std::string sessionName =
        (sessionKey && sessionKey->isString()) ? sessionKey->asString() : std::string();
    Gated& target = sessionName.empty() ? local : namedSession(sessionName);

    obs::MetricsRegistry::global().counter("daemon.submits").add(1);
    submits_.fetch_add(1, std::memory_order_relaxed);
    if (config_.telemetry)
      eventLog_.append(obs::EventKind::SubmitBegin, obs::EventFields()
                                                        .num("client", clientId)
                                                        .str("name", name)
                                                        .str("session", sessionName)
                                                        .take());

    const Clock::time_point gateT0 = Clock::now();
    std::lock_guard<std::mutex> gate(target.gate);
    info.gateWaitUs = usSince(gateT0);
    const Clock::time_point submitT0 = Clock::now();
    SessionResult result = target.session.submit(source->asString());
    const std::uint64_t submitUs = usSince(submitT0);
    if (!result.ok) {
      info.error = result.error;
      return errorResponse(id, info.error);
    }
    if (config_.telemetry)
      eventLog_.append(obs::EventKind::SubmitEnd,
                       obs::EventFields()
                           .num("client", clientId)
                           .str("name", name)
                           .str("session", sessionName)
                           .num("epoch", result.stats.epoch)
                           .num("dirty", static_cast<std::uint64_t>(result.stats.dirty))
                           .num("loops", static_cast<std::uint64_t>(result.loops.size()))
                           .num("wall_us", submitUs)
                           .take());

    // Composed exactly like the batch driver's stdout so a client dump
    // diffs clean against `panorama_driver FILE` — the smoke test's gate.
    std::string report = name + ": " + std::to_string(result.loops.size()) + " loop(s)\n\n";
    for (const SessionLoopResult& r : result.loops) {
      report += r.report;
      if (explain) report += r.provenance;
      report += '\n';
    }

    std::string out = "{\"id\":" + id + ",\"ok\":true,\"op\":\"submit\",\"epoch\":" +
                      std::to_string(result.stats.epoch) +
                      ",\"loops\":" + std::to_string(result.loops.size()) +
                      ",\"file_skips\":" + std::to_string(result.stats.fileSkips) +
                      ",\"loop_skips\":" + std::to_string(result.stats.loopSkips) +
                      ",\"units_clean_loops\":" + std::to_string(result.stats.unitsCleanLoops) +
                      ",\"units_dirty_loops\":" + std::to_string(result.stats.unitsDirtyLoops) +
                      ",\"report\":\"";
    support::appendJsonEscaped(out, report);
    out += '"';
    if (wantStats) {
      out += ",\"stats\":\"";
      support::appendJsonEscaped(out, formatSessionStats(result.stats));
      out += '"';
    }
    out += '}';
    return out;
  }

  info.error = "unknown op \"" + op + "\"";
  return errorResponse(id, info.error);
}

std::string Daemon::statusResponse(const std::string& id) {
  char buf[256];
  std::string out = "{\"id\":" + id + ",\"ok\":true,\"op\":\"status\"";
  std::snprintf(buf, sizeof(buf), ",\"uptime_ms\":%.3f", eventLog_.uptimeMs());
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ",\"connections\":{\"active\":%llu,\"total\":%llu},\"requests\":%llu,\"submits\":%llu,"
      "\"errors\":%llu,\"slow_requests\":%llu",
      static_cast<unsigned long long>(activeConnections_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(totalConnections_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(requests_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(submits_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(slowRequests_.load(std::memory_order_relaxed)));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"pool\":{\"threads\":%zu,\"queue_depth\":%zu}",
                pool_.threadCount(), pool_.queueDepth());
  out += buf;
  const ExprArena::Stats ea = ExprArena::global().stats();
  const PredArena::Stats pa = PredArena::global().stats();
  std::snprintf(buf, sizeof(buf),
                ",\"arenas\":{\"expr\":{\"distinct\":%zu,\"bytes\":%zu},"
                "\"pred\":{\"distinct\":%zu,\"bytes\":%zu}}",
                ea.distinct, ea.bytes, pa.distinct, pa.bytes);
  out += buf;
  out += ",\"caches\":{";
  appendCacheJson(out, "query_cache", QueryCache::global().stats());
  out += ',';
  appendCacheJson(out, "simplify_memo", simplifyMemoStats());
  out += "},\"sessions\":[";
  {
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    bool first = true;
    for (const auto& [name, gated] : namedSessions_) {
      const AnalysisSession::Status s = gated->session.status();
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      support::appendJsonEscaped(out, name);
      std::snprintf(buf, sizeof(buf),
                    "\",\"epoch\":%llu,\"units\":%zu,\"live\":%s,\"file_skips\":%llu}",
                    static_cast<unsigned long long>(s.epoch), s.units,
                    s.live ? "true" : "false", static_cast<unsigned long long>(s.fileSkips));
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "],\"event_log\":{\"appended\":%llu,\"capacity\":%zu}",
                static_cast<unsigned long long>(eventLog_.appended()), eventLog_.capacity());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"telemetry\":{\"enabled\":%s,\"slow_ms\":%zu,\"interval_ms\":%zu,"
                "\"event_log_file\":\"",
                config_.telemetry ? "true" : "false", config_.slowMs,
                config_.telemetryIntervalMs);
  out += buf;
  support::appendJsonEscaped(out, config_.eventLogPath);
  out += "\"}}";
  return out;
}

Daemon::Gated& Daemon::namedSession(const std::string& key) {
  std::lock_guard<std::mutex> lock(sessionsMutex_);
  std::unique_ptr<Gated>& slot = namedSessions_[key];
  if (!slot) slot = std::make_unique<Gated>(options_, &pool_);
  return *slot;
}

void Daemon::telemetryLoop() {
  const std::size_t periodMs =
      config_.telemetryIntervalMs > 0 ? config_.telemetryIntervalMs : 500;
  std::unique_lock<std::mutex> lock(telemetryMutex_);
  for (;;) {
    telemetryCv_.wait_for(lock, std::chrono::milliseconds(periodMs),
                          [&] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (config_.telemetryIntervalMs > 0) {
      const ExprArena::Stats ea = ExprArena::global().stats();
      const PredArena::Stats pa = PredArena::global().stats();
      eventLog_.append(
          obs::EventKind::Snapshot,
          obs::EventFields()
              .num("requests", requests_.load(std::memory_order_relaxed))
              .num("submits", submits_.load(std::memory_order_relaxed))
              .num("active", activeConnections_.load(std::memory_order_relaxed))
              .num("queue_depth", static_cast<std::uint64_t>(pool_.queueDepth()))
              .num("expr_bytes", static_cast<std::uint64_t>(ea.bytes))
              .num("pred_bytes", static_cast<std::uint64_t>(pa.bytes))
              .real("qc_hit_rate", QueryCache::global().stats().hitRate())
              .take());
    }
    drainEventLog();
  }
}

void Daemon::drainEventLog() {
  if (!eventLogFile_) return;
  for (;;) {
    obs::EventLog::Tail t = eventLog_.tail(sinkCursor_, 256);
    sinkCursor_ = t.nextCursor;
    for (const std::string& e : t.events) {
      std::fwrite(e.data(), 1, e.size(), eventLogFile_);
      std::fputc('\n', eventLogFile_);
    }
    if (t.events.empty()) break;
  }
  std::fflush(eventLogFile_);
}

void Daemon::stop() {
  if (!stopping_.exchange(true)) {
    // Unblock the accept loop (close() alone does not wake a blocked
    // accept(2); shutdown() does) and every handler blocked in readFrame.
    if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : clientFds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Taking stopMutex_ pairs with wait()'s predicate check, so a waiter
  // that just saw stopping_ == false is guaranteed to be inside wait()
  // before this notify fires.
  { std::lock_guard<std::mutex> lock(stopMutex_); }
  stopCv_.notify_all();
  // Same pairing for the telemetry thread's wait_for predicate.
  { std::lock_guard<std::mutex> lock(telemetryMutex_); }
  telemetryCv_.notify_all();
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [&] { return stopping_.load(std::memory_order_relaxed); });
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  // The accept loop has exited, so handlers_ no longer grows.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers)
    if (t.joinable()) t.join();
  if (telemetryThread_.joinable()) telemetryThread_.join();
  // Handlers and the telemetry thread are gone: flush what they appended
  // after the last periodic drain, then close the sink.
  if (eventLogFile_) {
    drainEventLog();
    std::fclose(eventLogFile_);
    eventLogFile_ = nullptr;
  }
}

}  // namespace panorama::store
