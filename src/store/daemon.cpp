#include "panorama/store/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "panorama/obs/metrics.h"
#include "panorama/obs/trace.h"
#include "panorama/store/protocol.h"
#include "panorama/support/json.h"

namespace panorama::store {

namespace {

using support::JsonValue;

/// Requests carry integer ids in practice; render integral doubles without
/// an exponent so the echoed id matches what the client sent.
std::string renderId(const JsonValue* id) {
  const double v = (id && id->isNumber()) ? id->asNumber() : 0.0;
  const long long n = static_cast<long long>(v);
  if (static_cast<double>(n) == v) return std::to_string(n);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string errorResponse(const std::string& id, const std::string& message) {
  std::string out = "{\"id\":" + id + ",\"ok\":false,\"error\":\"";
  support::appendJsonEscaped(out, message);
  out += "\"}";
  return out;
}

bool boolField(const JsonValue& req, std::string_view key) {
  const JsonValue* v = req.find(key);
  return v != nullptr && v->isBool() && v->asBool();
}

}  // namespace

Daemon::Daemon(std::string socketPath, AnalysisOptions options)
    : socketPath_(std::move(socketPath)), options_(options), pool_(options_.numThreads) {}

Daemon::~Daemon() {
  stop();
  wait();
}

bool Daemon::start(std::string& error) {
  listenFd_ = listenUnixSocket(socketPath_, &error);
  if (listenFd_ < 0) return false;
  acceptThread_ = std::thread(&Daemon::acceptLoop, this);
  return true;
}

void Daemon::acceptLoop() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listening socket down (or a hard error)
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    clientFds_.push_back(fd);
    obs::MetricsRegistry::global().counter("daemon.clients").add(1);
    handlers_.emplace_back(&Daemon::handleClient, this, fd);
  }
  ::close(listenFd_);
  ::unlink(socketPath_.c_str());
}

void Daemon::handleClient(int fd) {
  // One session per connection: client-local incremental state on top of
  // the shared arenas/caches/pool.
  AnalysisSession session(options_, &pool_);
  std::string payload;
  for (;;) {
    FrameStatus st = readFrame(fd, payload);
    // Eof is a clean disconnect; Error means the client died mid-frame.
    // Either way this connection is done — the shared store is untouched
    // (any in-flight submit completed or never started; session state is
    // connection-local and dies with it).
    if (st != FrameStatus::Ok) break;
    bool shutdownRequested = false;
    const std::string response = handleRequest(payload, session, shutdownRequested);
    if (!writeFrame(fd, response)) break;
    if (shutdownRequested) {
      stop();
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  clientFds_.erase(std::remove(clientFds_.begin(), clientFds_.end(), fd), clientFds_.end());
  ::close(fd);
}

std::string Daemon::handleRequest(const std::string& payload, AnalysisSession& session,
                                  bool& shutdownRequested) {
  obs::Span span("daemon", "daemon.request");
  obs::MetricsRegistry::global().counter("daemon.requests").add(1);

  std::string parseError;
  std::optional<JsonValue> req = JsonValue::parse(payload, &parseError);
  if (!req || !req->isObject())
    return errorResponse("0", "malformed request: " +
                                  (parseError.empty() ? "not a JSON object" : parseError));
  const std::string id = renderId(req->find("id"));
  const JsonValue* opField = req->find("op");
  if (!opField || !opField->isString())
    return errorResponse(id, "request has no \"op\" field");
  const std::string& op = opField->asString();

  if (op == "ping") return "{\"id\":" + id + ",\"ok\":true,\"op\":\"ping\"}";

  if (op == "shutdown") {
    shutdownRequested = true;
    return "{\"id\":" + id + ",\"ok\":true,\"op\":\"shutdown\"}";
  }

  if (op == "submit") {
    const JsonValue* source = req->find("source");
    if (!source || !source->isString())
      return errorResponse(id, "submit needs a string \"source\" field");
    const JsonValue* nameField = req->find("name");
    const std::string name =
        (nameField && nameField->isString()) ? nameField->asString() : "<client>";
    const bool explain = boolField(*req, "explain");
    const bool wantStats = boolField(*req, "stats");
    // "session": run against a named cross-connection session instead of
    // the connection-local one.
    const JsonValue* sessionKey = req->find("session");
    AnalysisSession& target = (sessionKey && sessionKey->isString())
                                  ? namedSession(sessionKey->asString())
                                  : session;

    obs::MetricsRegistry::global().counter("daemon.submits").add(1);
    SessionResult result = target.submit(source->asString());
    if (!result.ok) return errorResponse(id, result.error);

    // Composed exactly like the batch driver's stdout so a client dump
    // diffs clean against `panorama_driver FILE` — the smoke test's gate.
    std::string report = name + ": " + std::to_string(result.loops.size()) + " loop(s)\n\n";
    for (const SessionLoopResult& r : result.loops) {
      report += r.report;
      if (explain) report += r.provenance;
      report += '\n';
    }

    std::string out = "{\"id\":" + id + ",\"ok\":true,\"op\":\"submit\",\"epoch\":" +
                      std::to_string(result.stats.epoch) +
                      ",\"loops\":" + std::to_string(result.loops.size()) +
                      ",\"file_skips\":" + std::to_string(result.stats.fileSkips) +
                      ",\"loop_skips\":" + std::to_string(result.stats.loopSkips) +
                      ",\"units_clean_loops\":" + std::to_string(result.stats.unitsCleanLoops) +
                      ",\"units_dirty_loops\":" + std::to_string(result.stats.unitsDirtyLoops) +
                      ",\"report\":\"";
    support::appendJsonEscaped(out, report);
    out += '"';
    if (wantStats) {
      out += ",\"stats\":\"";
      support::appendJsonEscaped(out, formatSessionStats(result.stats));
      out += '"';
    }
    out += '}';
    return out;
  }

  return errorResponse(id, "unknown op \"" + op + "\"");
}

AnalysisSession& Daemon::namedSession(const std::string& key) {
  std::lock_guard<std::mutex> lock(sessionsMutex_);
  std::unique_ptr<AnalysisSession>& slot = namedSessions_[key];
  if (!slot) slot = std::make_unique<AnalysisSession>(options_, &pool_);
  return *slot;
}

void Daemon::stop() {
  if (!stopping_.exchange(true)) {
    // Unblock the accept loop (close() alone does not wake a blocked
    // accept(2); shutdown() does) and every handler blocked in readFrame.
    if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : clientFds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Taking stopMutex_ pairs with wait()'s predicate check, so a waiter
  // that just saw stopping_ == false is guaranteed to be inside wait()
  // before this notify fires.
  { std::lock_guard<std::mutex> lock(stopMutex_); }
  stopCv_.notify_all();
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [&] { return stopping_.load(std::memory_order_relaxed); });
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  // The accept loop has exited, so handlers_ no longer grows.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers)
    if (t.joinable()) t.join();
}

}  // namespace panorama::store
