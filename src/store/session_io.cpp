// AnalysisSession::save / restore — the versioned on-disk session store
// (DESIGN.md §4.8). The payload is a flat little-endian section stream:
//
//   [options][session counters][symbol names]
//   [expression pool][array table][predicate pool]
//   [post-sema AST][unit table][procedure snapshots]
//
// Stable-id scheme: the process-global hash-cons arenas assign ids in
// arrival order, which differs run to run, so ids are NOT serialized.
// Instead every distinct expression/predicate reachable from the session is
// assigned a dense *snapshot-local* index in first-use order; all references
// in the file are those indices, and restore re-interns each value into the
// live arenas (append-only, so re-interning is idempotent). Symbol and
// array tables ARE dense and append-only, so their ids are serialized as-is
// and restore rebuilds the tables by interning names in id order.
//
// Restore is all-or-nothing: the payload is parsed and validated into
// locals (bounds-checked reader, canonical-form checks before anything is
// interned, AST depth cap), then sema and HSG construction run on those
// locals; only after every step has succeeded is the session's state
// replaced by one block of moves. Any defect — truncation, bit rot, version
// skew, out-of-range index, non-canonical pool entry — yields a structured
// diagnostic and leaves the session exactly as it was.
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "panorama/analysis/driver.h"
#include "panorama/predicate/arena.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/session/session.h"
#include "panorama/symbolic/arena.h"

namespace panorama {

namespace {

using store::Reader;
using store::StoreResult;
using store::Writer;

/// DO statements in the same pre-order walk session.cpp diffs loops in —
/// the snapshot's loop keys are indices into this walk.
std::vector<const Stmt*> walkLoops(const Procedure& proc) {
  std::vector<const Stmt*> out;
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& body) {
    for (const StmtPtr& s : body) {
      if (s->kind == Stmt::Kind::Do) out.push_back(s.get());
      walk(s->thenBody);
      walk(s->elseBody);
      walk(s->body);
    }
  };
  walk(proc.body);
  return out;
}

// ----- writer side ---------------------------------------------------------

/// Dense snapshot-local indexing of the expressions/predicates the session
/// reaches. Pool entries are appended at first use; expressions carry no
/// internal references and predicates only reference expressions, so the
/// two pool streams never interleave inconsistently.
struct PoolWriter {
  Writer exprs;
  std::uint64_t exprCount = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> exprIndex;

  Writer preds;
  std::uint64_t predCount = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> predIndex;

  std::uint64_t expr(const SymExpr& e) {
    auto [it, inserted] = exprIndex.try_emplace(e.id(), exprCount);
    if (!inserted) return it->second;
    exprs.u8(e.isPoisoned() ? 1 : 0);
    exprs.u64(e.terms().size());
    for (const Term& t : e.terms()) {
      exprs.i64(t.coef);
      exprs.u64(t.vars.size());
      for (VarId v : t.vars) exprs.u32(v.value);
    }
    return exprCount++;
  }

  std::uint64_t pred(const Pred& p) {
    auto [it, inserted] = predIndex.try_emplace(p.id(), predCount);
    if (!inserted) return it->second;
    preds.u8(p.isUnknown() ? 1 : 0);
    preds.u64(p.clauses().size());
    for (const Disjunct& d : p.clauses()) {
      preds.u64(d.atoms.size());
      for (const Atom& a : d.atoms) atom(a);
    }
    return predCount++;
  }

  void atom(const Atom& a) {
    preds.u8(static_cast<std::uint8_t>(a.kind()));
    preds.u8(static_cast<std::uint8_t>(a.op()));
    preds.u8(a.logicalValue() ? 1 : 0);
    preds.u64(expr(a.expr()));
    preds.u32(a.logical().value);
    preds.u32(a.predArray().value);
    preds.u32(a.boundVar().value);
    preds.u64(expr(a.predRhs()));
    preds.u64(expr(a.forallLo()));
    preds.u64(expr(a.forallUp()));
  }

  void range(Writer& w, const SymRange& r) {
    w.u64(expr(r.lo));
    w.u64(expr(r.up));
    w.u64(expr(r.step));
  }

  void garList(Writer& w, const GarList& list) {
    w.u64(list.size());
    for (const Gar& g : list) {
      w.u64(pred(g.guard()));
      w.u32(g.region().array.value);
      w.u64(g.region().dims.size());
      for (const SymRange& d : g.region().dims) range(w, d);
    }
  }

  void vars(Writer& w, const std::vector<VarId>& vs) {
    w.u64(vs.size());
    for (VarId v : vs) w.u32(v.value);
  }
};

void writeLoc(Writer& w, SourceLoc loc) {
  w.u32(loc.line);
  w.u32(loc.column);
}

void writeExpr(Writer& w, const Expr& e);

void writeExprPtr(Writer& w, const ExprPtr& e) {
  w.u8(e ? 1 : 0);
  if (e) writeExpr(w, *e);
}

// All fields are written uniformly regardless of kind: the AST is small
// relative to the pools, and a uniform record keeps reader and writer in
// trivially checkable lockstep (RealLit doubles travel as raw bits — a text
// round-trip would not be byte-exact).
void writeExpr(Writer& w, const Expr& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  writeLoc(w, e.loc);
  w.i64(e.intValue);
  w.f64(e.realValue);
  w.u8(e.logicalValue ? 1 : 0);
  w.str(e.name);
  w.u8(static_cast<std::uint8_t>(e.binOp));
  w.u8(static_cast<std::uint8_t>(e.unOp));
  w.u64(e.args.size());
  for (const ExprPtr& a : e.args) writeExprPtr(w, a);
}

void writeStmt(Writer& w, const Stmt& s);

void writeBody(Writer& w, const std::vector<StmtPtr>& body) {
  w.u64(body.size());
  for (const StmtPtr& s : body) writeStmt(w, *s);
}

void writeStmt(Writer& w, const Stmt& s) {
  w.u8(static_cast<std::uint8_t>(s.kind));
  writeLoc(w, s.loc);
  w.i64(s.label);
  writeExprPtr(w, s.lhs);
  writeExprPtr(w, s.rhs);
  writeExprPtr(w, s.cond);
  writeBody(w, s.thenBody);
  writeBody(w, s.elseBody);
  w.str(s.doVar);
  writeExprPtr(w, s.lo);
  writeExprPtr(w, s.hi);
  writeExprPtr(w, s.step);
  writeBody(w, s.body);
  w.i64(s.gotoLabel);
  w.str(s.callee);
  w.u64(s.args.size());
  for (const ExprPtr& a : s.args) writeExprPtr(w, a);
}

void writeProcedure(Writer& w, const Procedure& p) {
  w.str(p.name);
  w.u8(p.isMain ? 1 : 0);
  w.u64(p.params.size());
  for (const std::string& s : p.params) w.str(s);
  w.u64(p.decls.size());
  for (const VarDecl& d : p.decls) {
    w.str(d.name);
    w.u8(static_cast<std::uint8_t>(d.type));
    w.u64(d.dims.size());
    for (const VarDecl::DimBound& b : d.dims) {
      writeExprPtr(w, b.lo);
      writeExprPtr(w, b.up);
    }
    writeLoc(w, d.loc);
  }
  w.u64(p.commons.size());
  for (const CommonBlock& c : p.commons) {
    w.str(c.name);
    w.u64(c.vars.size());
    for (const std::string& v : c.vars) w.str(v);
  }
  w.u64(p.paramConsts.size());
  for (const ParamConst& pc : p.paramConsts) {
    w.str(pc.name);
    writeExprPtr(w, pc.value);
  }
  writeBody(w, p.body);
  writeLoc(w, p.loc);
}

void writeLoopSummary(Writer& w, PoolWriter& pools, const LoopSummary& ls) {
  w.u32(ls.bounds.index.value);
  w.u64(pools.expr(ls.bounds.lo));
  w.u64(pools.expr(ls.bounds.up));
  w.u64(pools.expr(ls.bounds.step));
  w.u8(ls.boundsKnown ? 1 : 0);
  w.u8(ls.prematureExit ? 1 : 0);
  pools.garList(w, ls.modIter);
  pools.garList(w, ls.ueIter);
  pools.garList(w, ls.modBefore);
  pools.garList(w, ls.modAfter);
  pools.garList(w, ls.deIter);
  pools.garList(w, ls.mod);
  pools.garList(w, ls.ue);
  pools.garList(w, ls.de);
  pools.garList(w, ls.ueAfter);
  pools.vars(w, ls.bodyAssignedScalars);
}

void writeProcSummary(Writer& w, PoolWriter& pools, const ProcSummary& s) {
  pools.garList(w, s.mod);
  pools.garList(w, s.ue);
  pools.garList(w, s.de);
  pools.garList(w, s.modAll);
  pools.garList(w, s.ueAll);
  pools.vars(w, s.modifiedScalars);
}

// ----- reader side ---------------------------------------------------------

/// Snapshot-local pools plus the validation context (table sizes) every
/// reference is checked against before anything reaches the live arenas.
struct PoolReader {
  explicit PoolReader(Reader& reader) : r(reader) {}

  Reader& r;
  std::size_t symCount = 0;
  std::size_t arrayCount = 0;
  std::vector<SymExpr> exprs;
  std::vector<Pred> preds;

  /// A VarId field; invalid (UINT32_MAX) is permitted where noted.
  VarId var(bool allowInvalid) {
    VarId v{r.u32()};
    if (!r.ok()) return v;
    if (!v.isValid()) {
      if (!allowInvalid) r.fail("corrupted snapshot: invalid variable id");
      return v;
    }
    if (v.value >= symCount) r.fail("corrupted snapshot: variable id out of range");
    return v;
  }

  SymExpr exprAt(std::uint64_t idx) {
    if (!r.ok()) return SymExpr();
    if (idx >= exprs.size()) {
      r.fail("corrupted snapshot: expression index out of range");
      return SymExpr();
    }
    return exprs[static_cast<std::size_t>(idx)];
  }

  Pred predAt(std::uint64_t idx) {
    if (!r.ok()) return Pred();
    if (idx >= preds.size()) {
      r.fail("corrupted snapshot: predicate index out of range");
      return Pred();
    }
    return preds[static_cast<std::size_t>(idx)];
  }

  /// Reads the expression pool, enforcing the §3.1 canonical form *before*
  /// interning — the arenas are process-global and must never hold a
  /// non-canonical node, whatever the file claims.
  bool readExprPool() {
    const std::uint64_t n = r.count(9, "expression");
    exprs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const bool poisoned = r.u8() != 0;
      const std::uint64_t tn = r.count(16, "term");
      std::vector<Term> terms;
      terms.reserve(static_cast<std::size_t>(tn));
      for (std::uint64_t t = 0; t < tn && r.ok(); ++t) {
        Term term;
        term.coef = r.i64();
        if (r.ok() && term.coef == 0) {
          r.fail("corrupted snapshot: zero-coefficient term");
          break;
        }
        const std::uint64_t vn = r.count(4, "term variable");
        term.vars.reserve(static_cast<std::size_t>(vn));
        for (std::uint64_t k = 0; k < vn && r.ok(); ++k) {
          VarId v = var(/*allowInvalid=*/false);
          if (!term.vars.empty() && r.ok() && v < term.vars.back())
            r.fail("corrupted snapshot: term variables out of order");
          term.vars.push_back(v);
        }
        if (!terms.empty() && r.ok() && !monomialLess(terms.back().vars, term.vars))
          r.fail("corrupted snapshot: expression terms out of order");
        terms.push_back(std::move(term));
      }
      if (r.ok() && poisoned && !terms.empty())
        r.fail("corrupted snapshot: poisoned expression carries terms");
      if (!r.ok()) return false;
      exprs.push_back(ExprArena::global().intern(std::move(terms), poisoned));
    }
    return r.ok();
  }

  std::optional<Atom> readAtom() {
    const std::uint8_t kind = r.u8();
    const std::uint8_t op = r.u8();
    const bool value = r.u8() != 0;
    const SymExpr e = exprAt(r.u64());
    const VarId lvar = var(/*allowInvalid=*/true);
    const AtomArrayRef arr{r.u32()};
    const VarId bound = var(/*allowInvalid=*/true);
    const SymExpr rhs = exprAt(r.u64());
    const SymExpr lo = exprAt(r.u64());
    const SymExpr up = exprAt(r.u64());
    if (!r.ok()) return std::nullopt;
    if (kind > static_cast<std::uint8_t>(Atom::Kind::Forall)) {
      r.fail("corrupted snapshot: unknown atom kind");
      return std::nullopt;
    }
    auto requireArray = [&]() {
      if (arr == AtomArrayRef{} || arr.value >= arrayCount)
        r.fail("corrupted snapshot: atom array id out of range");
    };
    switch (static_cast<Atom::Kind>(kind)) {
      case Atom::Kind::Rel:
        if (op > static_cast<std::uint8_t>(RelOp::RNE)) {
          r.fail("corrupted snapshot: unknown relational operator");
          return std::nullopt;
        }
        // rel() re-canonicalizes (EQ/NE sign, LE tightening); idempotent on
        // honestly saved atoms, and re-normalizing is exactly what keeps a
        // tampered payload from planting a non-canonical atom.
        return Atom::rel(e, static_cast<RelOp>(op));
      case Atom::Kind::LogVar:
        if (!lvar.isValid()) {
          r.fail("corrupted snapshot: logical atom without a variable");
          return std::nullopt;
        }
        return Atom::logicalVar(lvar, value);
      case Atom::Kind::ArrayPred:
        requireArray();
        if (r.ok() && !lvar.isValid()) r.fail("corrupted snapshot: array predicate without a key");
        if (!r.ok()) return std::nullopt;
        return Atom::arrayPred(arr, lvar, e, rhs, value);
      case Atom::Kind::Forall:
        requireArray();
        if (r.ok() && (!lvar.isValid() || !bound.isValid()))
          r.fail("corrupted snapshot: malformed forall atom");
        if (!r.ok()) return std::nullopt;
        return Atom::forallPred(arr, lvar, bound, e, rhs, lo, up, value);
    }
    r.fail("corrupted snapshot: unknown atom kind");
    return std::nullopt;
  }

  bool readPredPool() {
    const std::uint64_t n = r.count(9, "predicate");
    preds.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const bool unknown = r.u8() != 0;
      const std::uint64_t cn = r.count(8, "clause");
      std::vector<Disjunct> clauses;
      clauses.reserve(static_cast<std::size_t>(cn));
      for (std::uint64_t c = 0; c < cn && r.ok(); ++c) {
        const std::uint64_t an = r.count(41, "atom");
        Disjunct d;
        d.atoms.reserve(static_cast<std::size_t>(an));
        for (std::uint64_t a = 0; a < an && r.ok(); ++a) {
          std::optional<Atom> atom = readAtom();
          if (!atom) break;
          if (!d.atoms.empty() && Atom::compare(d.atoms.back(), *atom) >= 0) {
            r.fail("corrupted snapshot: clause atoms out of order");
            break;
          }
          d.atoms.push_back(std::move(*atom));
        }
        if (!clauses.empty() && r.ok() && Disjunct::compare(clauses.back(), d) >= 0)
          r.fail("corrupted snapshot: predicate clauses out of order");
        clauses.push_back(std::move(d));
      }
      if (!r.ok()) return false;
      preds.push_back(PredArena::global().intern(std::move(clauses), unknown));
    }
    return r.ok();
  }

  SymRange range() {
    SymRange out;
    out.lo = exprAt(r.u64());
    out.up = exprAt(r.u64());
    out.step = exprAt(r.u64());
    return out;
  }

  GarList garList() {
    GarList out;
    const std::uint64_t n = r.count(20, "region piece");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const Pred guard = predAt(r.u64());
      Region region;
      region.array = ArrayId{r.u32()};
      if (r.ok() && (!region.array.isValid() || region.array.value >= arrayCount))
        r.fail("corrupted snapshot: region array id out of range");
      const std::uint64_t dn = r.count(24, "region dimension");
      region.dims.reserve(static_cast<std::size_t>(dn));
      for (std::uint64_t d = 0; d < dn && r.ok(); ++d) region.dims.push_back(range());
      if (!r.ok()) break;
      out.addRaw(Gar::fromParts(guard, std::move(region)));
    }
    return out;
  }

  std::vector<VarId> vars(bool allowInvalid) {
    std::vector<VarId> out;
    const std::uint64_t n = r.count(4, "variable list entry");
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) out.push_back(var(allowInvalid));
    return out;
  }
};

/// AST reconstruction with a structural depth cap so a hostile payload
/// cannot drive unbounded recursion.
struct AstReader {
  Reader& r;
  int depth = 0;
  static constexpr int kMaxDepth = 4096;

  bool descend() {
    if (++depth > kMaxDepth) {
      r.fail("corrupted snapshot: AST nesting too deep");
      return false;
    }
    return true;
  }

  SourceLoc loc() {
    SourceLoc out;
    out.line = r.u32();
    out.column = r.u32();
    return out;
  }

  ExprPtr exprPtr() {
    if (r.u8() == 0 || !r.ok()) return nullptr;
    return expr();
  }

  ExprPtr expr() {
    if (!descend()) return nullptr;
    auto e = std::make_unique<Expr>();
    const std::uint8_t kind = r.u8();
    if (r.ok() && kind > static_cast<std::uint8_t>(Expr::Kind::Unary))
      r.fail("corrupted snapshot: unknown expression kind");
    e->kind = static_cast<Expr::Kind>(kind);
    e->loc = loc();
    e->intValue = r.i64();
    e->realValue = r.f64();
    e->logicalValue = r.u8() != 0;
    e->name = r.str();
    const std::uint8_t bin = r.u8();
    if (r.ok() && bin > static_cast<std::uint8_t>(BinOp::Or))
      r.fail("corrupted snapshot: unknown binary operator");
    e->binOp = static_cast<BinOp>(bin);
    const std::uint8_t un = r.u8();
    if (r.ok() && un > static_cast<std::uint8_t>(UnOp::Not))
      r.fail("corrupted snapshot: unknown unary operator");
    e->unOp = static_cast<UnOp>(un);
    const std::uint64_t n = r.count(1, "expression operand");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      ExprPtr a = exprPtr();
      if (r.ok() && !a) r.fail("corrupted snapshot: missing expression operand");
      e->args.push_back(std::move(a));
    }
    --depth;
    if (!r.ok()) return nullptr;
    return e;
  }

  std::vector<StmtPtr> body() {
    std::vector<StmtPtr> out;
    const std::uint64_t n = r.count(60, "statement");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      StmtPtr s = stmt();
      if (!s) break;
      out.push_back(std::move(s));
    }
    return out;
  }

  StmtPtr stmt() {
    if (!descend()) return nullptr;
    auto s = std::make_unique<Stmt>();
    const std::uint8_t kind = r.u8();
    if (r.ok() && kind > static_cast<std::uint8_t>(Stmt::Kind::Stop))
      r.fail("corrupted snapshot: unknown statement kind");
    s->kind = static_cast<Stmt::Kind>(kind);
    s->loc = loc();
    s->label = static_cast<int>(r.i64());
    s->lhs = exprPtr();
    s->rhs = exprPtr();
    s->cond = exprPtr();
    s->thenBody = body();
    s->elseBody = body();
    s->doVar = r.str();
    s->lo = exprPtr();
    s->hi = exprPtr();
    s->step = exprPtr();
    s->body = body();
    s->gotoLabel = static_cast<int>(r.i64());
    s->callee = r.str();
    const std::uint64_t n = r.count(1, "call argument");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      ExprPtr a = exprPtr();
      if (r.ok() && !a) r.fail("corrupted snapshot: missing call argument");
      s->args.push_back(std::move(a));
    }
    --depth;
    if (!r.ok()) return nullptr;
    return s;
  }

  bool procedure(Procedure& p) {
    p.name = r.str();
    p.isMain = r.u8() != 0;
    const std::uint64_t pn = r.count(8, "parameter");
    for (std::uint64_t i = 0; i < pn && r.ok(); ++i) p.params.push_back(r.str());
    const std::uint64_t dn = r.count(18, "declaration");
    for (std::uint64_t i = 0; i < dn && r.ok(); ++i) {
      VarDecl d;
      d.name = r.str();
      const std::uint8_t type = r.u8();
      if (r.ok() && type > static_cast<std::uint8_t>(BaseType::Logical))
        r.fail("corrupted snapshot: unknown declaration type");
      d.type = static_cast<BaseType>(type);
      const std::uint64_t bn = r.count(2, "dimension bound");
      for (std::uint64_t b = 0; b < bn && r.ok(); ++b) {
        VarDecl::DimBound bound;
        bound.lo = exprPtr();
        bound.up = exprPtr();
        d.dims.push_back(std::move(bound));
      }
      d.loc = loc();
      p.decls.push_back(std::move(d));
    }
    const std::uint64_t cn = r.count(16, "common block");
    for (std::uint64_t i = 0; i < cn && r.ok(); ++i) {
      CommonBlock c;
      c.name = r.str();
      const std::uint64_t vn = r.count(8, "common variable");
      for (std::uint64_t v = 0; v < vn && r.ok(); ++v) c.vars.push_back(r.str());
      p.commons.push_back(std::move(c));
    }
    const std::uint64_t kn = r.count(9, "parameter constant");
    for (std::uint64_t i = 0; i < kn && r.ok(); ++i) {
      ParamConst pc;
      pc.name = r.str();
      pc.value = exprPtr();
      if (r.ok() && !pc.value) r.fail("corrupted snapshot: parameter constant without a value");
      p.paramConsts.push_back(std::move(pc));
    }
    p.body = body();
    p.loc = loc();
    return r.ok();
  }
};

LoopSummary readLoopSummary(PoolReader& pools) {
  LoopSummary ls;
  ls.bounds.index = pools.var(/*allowInvalid=*/true);
  ls.bounds.lo = pools.exprAt(pools.r.u64());
  ls.bounds.up = pools.exprAt(pools.r.u64());
  ls.bounds.step = pools.exprAt(pools.r.u64());
  ls.boundsKnown = pools.r.u8() != 0;
  ls.prematureExit = pools.r.u8() != 0;
  ls.modIter = pools.garList();
  ls.ueIter = pools.garList();
  ls.modBefore = pools.garList();
  ls.modAfter = pools.garList();
  ls.deIter = pools.garList();
  ls.mod = pools.garList();
  ls.ue = pools.garList();
  ls.de = pools.garList();
  ls.ueAfter = pools.garList();
  ls.bodyAssignedScalars = pools.vars(/*allowInvalid=*/false);
  return ls;
}

ProcSummary readProcSummary(PoolReader& pools) {
  ProcSummary s;
  s.mod = pools.garList();
  s.ue = pools.garList();
  s.de = pools.garList();
  s.modAll = pools.garList();
  s.ueAll = pools.garList();
  s.modifiedScalars = pools.vars(/*allowInvalid=*/false);
  return s;
}

}  // namespace

// ----- AnalysisSession::save ----------------------------------------------

store::StoreResult AnalysisSession::save(const std::string& path,
                                         std::uint32_t schemaVersion) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return saveLocked(path, schemaVersion);
}

store::StoreResult AnalysisSession::saveLocked(const std::string& path,
                                               std::uint32_t schemaVersion) const {
  StoreResult out;
  if (schemaVersion < store::kMinSchemaVersion || schemaVersion > store::kSchemaVersion) {
    out.error = path + ": cannot write schema version " + std::to_string(schemaVersion) +
                " (this build writes versions " + std::to_string(store::kMinSchemaVersion) +
                ".." + std::to_string(store::kSchemaVersion) + ")";
    return out;
  }
  if (!live_) {
    out.error = path + ": cannot save a session before its first successful submit";
    return out;
  }

  PoolWriter pools;

  Writer head;
  head.u8(options_.symbolicAnalysis ? 1 : 0);
  head.u8(options_.ifConditions ? 1 : 0);
  head.u8(options_.interprocedural ? 1 : 0);
  head.u8(options_.quantified ? 1 : 0);
  head.u8(options_.computeDE ? 1 : 0);
  head.u8(options_.garSimplifier ? 1 : 0);
  head.u8(options_.prefilter ? 1 : 0);
  head.u64(options_.simplify.maxClauses);
  head.u64(options_.simplify.maxAtomsPerClause);
  head.u8(options_.simplify.useFourierMotzkin ? 1 : 0);
  head.u64(options_.simplify.fmBudget.maxConstraints);
  head.u64(options_.simplify.fmBudget.maxVariables);

  head.u64(epoch_);
  head.u64(lastSourceHash_);
  head.u8(hasSourceHash_ ? 1 : 0);
  head.u64(fileSkips_);

  head.u64(sema_.symbols.size());
  for (std::size_t i = 0; i < sema_.symbols.size(); ++i)
    head.str(sema_.symbols.name(VarId{static_cast<std::uint32_t>(i)}));

  // Array table (registers declared-bound expressions into the pool).
  Writer arraysW;
  arraysW.u64(sema_.arrays.size());
  for (std::size_t i = 0; i < sema_.arrays.size(); ++i) {
    const ArrayShape& s = sema_.arrays.shape(ArrayId{static_cast<std::uint32_t>(i)});
    arraysW.str(s.name);
    arraysW.u64(s.declaredDims.size());
    for (const SymRange& d : s.declaredDims) pools.range(arraysW, d);
  }

  Writer astW;
  astW.u64(program_.procedures.size());
  for (const Procedure& p : program_.procedures) writeProcedure(astW, p);

  // Unit table. v2 carries the declaration-frame hash, headerless reports
  // (doVar + reportTail), and the per-item reuse records; v1 stays writable
  // (composed report strings, no items) so the v1 read path is honestly
  // testable against files this build produced.
  Writer unitsW;
  unitsW.u64(units_.size());
  for (const auto& [name, u] : units_) {
    unitsW.str(name);
    unitsW.u64(u.fp);
    if (schemaVersion >= 2) unitsW.u64(u.frameFp);
    unitsW.u64(u.summaryEpoch);
    unitsW.u64(u.deps.size());
    for (const std::string& d : u.deps) unitsW.str(d);
    unitsW.u64(u.calleeEpochs.size());
    for (const auto& [dep, epoch] : u.calleeEpochs) {
      unitsW.str(dep);
      unitsW.u64(epoch);
    }
    unitsW.u64(u.loops.size());
    for (const CachedLoop& cl : u.loops) {
      unitsW.i64(cl.line);
      unitsW.u8(static_cast<std::uint8_t>(cl.classification));
      unitsW.str(cl.procName);
      if (schemaVersion >= 2) {
        unitsW.str(cl.doVar);
        unitsW.str(cl.reportTail);
      } else {
        unitsW.str(composeLoopReport(cl));
      }
      unitsW.str(cl.provenance);
    }
    if (schemaVersion >= 2) {
      unitsW.u64(u.items.size());
      for (const ItemRecord& rec : u.items) {
        unitsW.u64(rec.hash);
        unitsW.u64(rec.suffixHash);
        unitsW.u64(rec.precedingHash);
        unitsW.u8(rec.hasLoop ? 1 : 0);
        unitsW.u32(rec.loopBegin);
        unitsW.u32(rec.loopCount);
        unitsW.u64(rec.calleeEpochs.size());
        for (const auto& [callee, epoch] : rec.calleeEpochs) {
          unitsW.str(callee);
          unitsW.u64(epoch);
        }
      }
    }
  }

  // Procedure snapshots: from the live analyzer when there is one, or from
  // the pending set a restore left behind.
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> local;
  const std::map<std::string, SummaryAnalyzer::ProcSnapshot>* snaps = &pendingSnapshots_;
  if (analyzer_) {
    for (const Procedure& p : program_.procedures)
      local.emplace(p.name, analyzer_->snapshotProcedure(p));
    snaps = &local;
  }

  Writer snapW;
  snapW.u64(snaps->size());
  for (const auto& [name, snap] : *snaps) {
    const Procedure* proc = program_.findProcedure(name);
    if (!proc) {
      out.error = path + ": internal error: snapshot of unknown procedure '" + name + "'";
      return out;
    }
    std::map<const Stmt*, std::uint64_t> walkIndex;
    {
      std::uint64_t k = 0;
      for (const Stmt* s : walkLoops(*proc)) walkIndex.emplace(s, k++);
    }
    snapW.str(name);
    snapW.u8(snap.hasSummary ? 1 : 0);
    snapW.u8(snap.hasScalars ? 1 : 0);
    writeProcSummary(snapW, pools, snap.summary);
    pools.vars(snapW, snap.modifiedScalars);
    snapW.u64(snap.loops.size());
    for (const auto& [stmt, ls] : snap.loops) {
      auto it = walkIndex.find(stmt);
      if (it == walkIndex.end()) {
        out.error = path + ": internal error: loop summary outside the procedure walk";
        return out;
      }
      snapW.u64(it->second);
      writeLoopSummary(snapW, pools, ls);
    }
  }

  // Assemble in the reader's order; the pools are complete only now, but
  // they sit *before* every section that references them.
  std::string payload;
  payload += head.bytes();
  {
    Writer c;
    c.u64(pools.exprCount);
    payload += c.bytes();
  }
  payload += pools.exprs.bytes();
  payload += arraysW.bytes();
  {
    Writer c;
    c.u64(pools.predCount);
    payload += c.bytes();
  }
  payload += pools.preds.bytes();
  payload += astW.bytes();
  payload += unitsW.bytes();
  payload += snapW.bytes();

  return store::writeSnapshotFile(path, payload, schemaVersion);
}

// ----- AnalysisSession::restore -------------------------------------------

store::StoreResult AnalysisSession::restore(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreResult out = restoreLocked(path);
  publishStatusLocked();
  return out;
}

store::StoreResult AnalysisSession::restoreLocked(const std::string& path) {
  StoreResult out;
  std::string payload;
  std::uint32_t version = 0;
  {
    StoreResult file = store::readSnapshotFile(path, payload, version);
    if (!file.ok) return file;
  }

  Reader r(payload);
  auto failed = [&](const std::string& why) {
    StoreResult res;
    res.error = path + ": " + why;
    return res;
  };

  AnalysisOptions opts;
  opts.symbolicAnalysis = r.u8() != 0;
  opts.ifConditions = r.u8() != 0;
  opts.interprocedural = r.u8() != 0;
  opts.quantified = r.u8() != 0;
  opts.computeDE = r.u8() != 0;
  opts.garSimplifier = r.u8() != 0;
  opts.prefilter = r.u8() != 0;
  opts.simplify.maxClauses = static_cast<std::size_t>(r.u64());
  opts.simplify.maxAtomsPerClause = static_cast<std::size_t>(r.u64());
  opts.simplify.useFourierMotzkin = r.u8() != 0;
  opts.simplify.fmBudget.maxConstraints = static_cast<std::size_t>(r.u64());
  opts.simplify.fmBudget.maxVariables = static_cast<std::size_t>(r.u64());
  // Execution knobs are not part of the snapshot; the restoring session
  // keeps its own.
  opts.numThreads = options_.numThreads;
  opts.cacheCapacity = options_.cacheCapacity;

  const std::uint64_t epoch = r.u64();
  const std::uint64_t lastSourceHash = r.u64();
  const bool hasSourceHash = r.u8() != 0;
  const std::uint64_t fileSkips = r.u64();

  SymbolTable symbols;
  {
    const std::uint64_t n = r.count(8, "symbol");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const std::string name = r.str();
      if (!r.ok()) break;
      VarId id = symbols.intern(name);
      if (id.value != i) return failed("corrupted snapshot: symbol table is not dense");
    }
    if (!r.ok()) return failed(r.error());
  }

  PoolReader pools(r);
  pools.symCount = symbols.size();
  if (!pools.readExprPool()) return failed(r.error());

  ArrayTable arrays;
  {
    const std::uint64_t n = r.count(16, "array");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const std::string name = r.str();
      const std::uint64_t rank = r.count(24, "declared dimension");
      std::vector<SymRange> dims;
      dims.reserve(static_cast<std::size_t>(rank));
      for (std::uint64_t d = 0; d < rank && r.ok(); ++d) dims.push_back(pools.range());
      if (!r.ok()) break;
      ArrayId id = arrays.intern(name, std::move(dims));
      if (id.value != i) return failed("corrupted snapshot: array table is not dense");
    }
    if (!r.ok()) return failed(r.error());
  }
  pools.arrayCount = arrays.size();

  if (!pools.readPredPool()) return failed(r.error());

  Program program;
  {
    AstReader ast{r};
    const std::uint64_t n = r.count(50, "procedure");
    program.procedures.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      Procedure p;
      if (!ast.procedure(p)) break;
      program.procedures.push_back(std::move(p));
    }
    if (!r.ok()) return failed(r.error());
  }

  std::map<std::string, Unit> units;
  {
    const std::uint64_t n = r.count(40, "unit");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const std::string name = r.str();
      Unit u;
      u.fp = r.u64();
      if (version >= 2) u.frameFp = r.u64();
      u.summaryEpoch = r.u64();
      const std::uint64_t dn = r.count(8, "dependency");
      for (std::uint64_t d = 0; d < dn && r.ok(); ++d) u.deps.insert(r.str());
      const std::uint64_t en = r.count(16, "callee epoch");
      for (std::uint64_t e = 0; e < en && r.ok(); ++e) {
        const std::string dep = r.str();
        const std::uint64_t de = r.u64();
        u.calleeEpochs.emplace(dep, de);
      }
      const std::uint64_t ln = r.count(33, "cached loop");
      for (std::uint64_t l = 0; l < ln && r.ok(); ++l) {
        CachedLoop cl;
        cl.line = static_cast<int>(r.i64());
        const std::uint8_t cls = r.u8();
        if (r.ok() && cls > static_cast<std::uint8_t>(LoopClass::Serial))
          return failed("corrupted snapshot: unknown loop classification");
        cl.classification = static_cast<LoopClass>(cls);
        cl.procName = r.str();
        if (version >= 2) {
          cl.doVar = r.str();
          cl.reportTail = r.str();
        } else {
          // v1 cached the composed string; split the fixed header back out.
          // An unsplittable report is served verbatim (empty doVar), it just
          // cannot have its line citation remapped.
          const std::string report = r.str();
          if (r.ok() && !splitLoopReport(report, cl)) {
            cl.doVar.clear();
            cl.reportTail = report;
          }
        }
        cl.provenance = r.str();
        u.loops.push_back(std::move(cl));
      }
      if (version >= 2) {
        const std::uint64_t in = r.count(41, "item record");
        for (std::uint64_t k = 0; k < in && r.ok(); ++k) {
          ItemRecord rec;
          rec.hash = r.u64();
          rec.suffixHash = r.u64();
          rec.precedingHash = r.u64();
          rec.hasLoop = r.u8() != 0;
          rec.loopBegin = r.u32();
          rec.loopCount = r.u32();
          const std::uint64_t cn = r.count(16, "item callee epoch");
          for (std::uint64_t c = 0; c < cn && r.ok(); ++c) {
            const std::string callee = r.str();
            const std::uint64_t ce = r.u64();
            rec.calleeEpochs.emplace(callee, ce);
          }
          if (r.ok() &&
              std::uint64_t{rec.loopBegin} + std::uint64_t{rec.loopCount} > u.loops.size())
            return failed("corrupted snapshot: item loop range exceeds the unit's loop cache");
          u.items.push_back(std::move(rec));
        }
      }
      if (!r.ok()) break;
      units.emplace(name, std::move(u));
    }
    if (!r.ok()) return failed(r.error());
  }

  struct PendingLoop {
    std::uint64_t walkIndex = 0;
    LoopSummary summary;
  };
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> snaps;
  std::map<std::string, std::vector<PendingLoop>> snapLoops;
  {
    const std::uint64_t n = r.count(20, "procedure snapshot");
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      const std::string name = r.str();
      SummaryAnalyzer::ProcSnapshot snap;
      snap.hasSummary = r.u8() != 0;
      snap.hasScalars = r.u8() != 0;
      snap.summary = readProcSummary(pools);
      snap.modifiedScalars = pools.vars(/*allowInvalid=*/false);
      std::vector<PendingLoop> loops;
      const std::uint64_t ln = r.count(60, "loop summary");
      for (std::uint64_t l = 0; l < ln && r.ok(); ++l) {
        PendingLoop pl;
        pl.walkIndex = r.u64();
        pl.summary = readLoopSummary(pools);
        loops.push_back(std::move(pl));
      }
      if (!r.ok()) break;
      snaps.emplace(name, std::move(snap));
      snapLoops.emplace(name, std::move(loops));
    }
    if (!r.ok()) return failed(r.error());
  }

  if (!r.atEnd()) return failed("corrupted snapshot (trailing payload content)");

  // Cross-section consistency: units and procedures must be in bijection,
  // and snapshots must name known procedures.
  for (const Procedure& p : program.procedures)
    if (!units.count(p.name))
      return failed("corrupted snapshot: procedure '" + p.name + "' has no unit");
  if (units.size() != program.procedures.size())
    return failed("corrupted snapshot: unit table names an unknown procedure");
  for (const auto& [name, snap] : snaps) {
    (void)snap;
    if (!program.findProcedure(name))
      return failed("corrupted snapshot: snapshot of unknown procedure '" + name + "'");
  }

  // Semantic re-analysis against the rebuilt tables: sema is idempotent over
  // post-sema ASTs, so ids keep their saved values. A failure means the
  // payload content was never a valid session — reject it whole.
  DiagnosticEngine diags;
  std::optional<SemaResult> sr = analyze(program, diags, std::move(symbols), std::move(arrays));
  if (!sr) return failed("invalid snapshot (semantic re-analysis rejected it):\n" + diags.str());

  DiagnosticEngine hdiags;
  Hsg hsg;
  for (Procedure& p : program.procedures) {
    ProcedureHsg ph = buildProcedureHsg(p, hdiags);
    ph.proc = &p;
    hsg.procs.emplace(p.name, std::move(ph));
  }
  if (hdiags.hasErrors())
    return failed("invalid snapshot (flow-graph construction rejected it):\n" + hdiags.str());

  // Rebind snapshot loop summaries to the restored statement objects.
  for (auto& [name, loops] : snapLoops) {
    const Procedure* proc = program.findProcedure(name);
    const std::vector<const Stmt*> walk = walkLoops(*proc);
    SummaryAnalyzer::ProcSnapshot& snap = snaps.at(name);
    for (PendingLoop& pl : loops) {
      if (pl.walkIndex >= walk.size())
        return failed("corrupted snapshot: loop summary index out of range");
      const Stmt* stmt = walk[static_cast<std::size_t>(pl.walkIndex)];
      pl.summary.stmt = stmt;
      snap.loops.emplace_back(stmt, std::move(pl.summary));
    }
  }

  // Everything validated — commit in one block of moves. From here on no
  // step can fail, so the atomicity contract holds.
  analyzer_.reset();
  program_ = std::move(program);
  sema_ = std::move(*sr);
  hsg_ = std::move(hsg);
  units_ = std::move(units);
  pendingSnapshots_ = std::move(snaps);
  options_ = opts;
  optionsKey_ = optionsKey(options_);
  unitsOptionsKey_ = optionsKey_;
  epoch_ = epoch;
  lastSourceHash_ = lastSourceHash;
  hasSourceHash_ = hasSourceHash;
  fileSkips_ = fileSkips;
  live_ = true;
  lastStats_ = SessionStats{};
  lastStats_.epoch = epoch_;
  lastStats_.procedures = program_.procedures.size();
  lastStats_.fileSkips = fileSkips_;
  setQueryTierEnabled(options_.prefilter);

  out.ok = true;
  return out;
}

}  // namespace panorama
