#include "panorama/interp/interpreter.h"

#include <cmath>
#include <functional>
#include <unordered_map>

namespace panorama {

namespace {

struct InterpAbort {
  std::string message;
};

enum class Sig : std::uint8_t { Normal, Jump, Return, Stop };

/// By-reference binding of a formal scalar.
struct ScalarRef {
  enum class Kind : std::uint8_t { Global, ArrayElem, Temp } kind = Kind::Temp;
  VarId global;                       // Global
  ArrayId array;                      // ArrayElem
  std::vector<std::int64_t> index;    // ArrayElem
  InterpValue temp;                   // Temp (by-value: writes vanish)
};

/// By-reference binding of a formal array.
struct ArrayRef {
  bool known = false;
  ArrayId actual;
  std::vector<std::int64_t> offset;  // formal index + offset = actual index
};

struct Frame {
  const Procedure* proc = nullptr;
  const ProcSymbols* sym = nullptr;
  std::unordered_map<std::string, ScalarRef> scalarFormals;
  std::unordered_map<std::string, ArrayRef> arrayFormals;
};

}  // namespace

class InterpImpl {
 public:
  InterpImpl(Interpreter& host, const Interpreter::Config& cfg)
      : host_(host), cfg_(cfg), program_(host.program_), sema_(host.sema_) {}

  Interpreter::Result run() {
    Interpreter::Result result;
    try {
      seedInputs();
      const Procedure* main = sema_.main;
      if (!main) throw InterpAbort{"no main program"};
      frames_.push_back(Frame{main, &sema_.of(*main), {}, {}});
      Sig s = execBody(main->body);
      (void)s;
      result.ok = true;
    } catch (const InterpAbort& abort) {
      result.error = abort.message;
    }
    result.steps = steps_;
    return result;
  }

 private:
  // ----------------------------------------------------------------- setup
  void seedInputs() {
    for (const auto& [name, value] : cfg_.scalarInputs) {
      if (auto id = sema_.symbols.lookup(name))
        host_.scalars_[*id] = value;
      else
        throw InterpAbort{"unknown scalar input '" + name + "'"};
    }
    for (const auto& [name, elems] : cfg_.arrayInputs) {
      if (auto id = sema_.arrays.lookup(name)) {
        for (const auto& [idx, v] : elems) host_.arrays_[*id][idx] = v;
      } else {
        throw InterpAbort{"unknown array input '" + name + "'"};
      }
    }
  }

  void tick() {
    if (++steps_ > cfg_.maxSteps) throw InterpAbort{"step limit exceeded"};
  }

  Frame& frame() { return frames_.back(); }

  // ------------------------------------------------------------ data model
  InterpValue readScalar(const std::string& name) {
    auto f = frame().scalarFormals.find(name);
    if (f != frame().scalarFormals.end()) {
      switch (f->second.kind) {
        case ScalarRef::Kind::Global: return host_.scalars_[f->second.global];
        case ScalarRef::Kind::ArrayElem:
          return InterpValue::ofReal(readElem(f->second.array, f->second.index));
        case ScalarRef::Kind::Temp: return f->second.temp;
      }
    }
    auto id = frame().sym->scalarId(name);
    if (!id) throw InterpAbort{"read of unknown scalar '" + name + "'"};
    auto it = host_.scalars_.find(*id);
    if (it != host_.scalars_.end()) return it->second;
    // Uninitialized: typed zero.
    switch (frame().sym->typeOf(name)) {
      case BaseType::Integer: return InterpValue::ofInt(0);
      case BaseType::Real: return InterpValue::ofReal(0.0);
      case BaseType::Logical: return InterpValue::ofLogical(false);
    }
    return InterpValue::ofInt(0);
  }

  void writeScalar(const std::string& name, InterpValue v) {
    auto f = frame().scalarFormals.find(name);
    if (f != frame().scalarFormals.end()) {
      switch (f->second.kind) {
        case ScalarRef::Kind::Global:
          host_.scalars_[f->second.global] = coerce(v, sema_.symbols.name(f->second.global));
          return;
        case ScalarRef::Kind::ArrayElem:
          writeElem(f->second.array, f->second.index, v.asReal());
          return;
        case ScalarRef::Kind::Temp:
          f->second.temp = v;
          return;
      }
    }
    auto id = frame().sym->scalarId(name);
    if (!id) throw InterpAbort{"write to unknown scalar '" + name + "'"};
    // Coerce to the declared type.
    switch (frame().sym->typeOf(name)) {
      case BaseType::Integer: host_.scalars_[*id] = InterpValue::ofInt(v.asInt()); break;
      case BaseType::Real: host_.scalars_[*id] = InterpValue::ofReal(v.asReal()); break;
      case BaseType::Logical: host_.scalars_[*id] = InterpValue::ofLogical(v.asLogical()); break;
    }
  }

  InterpValue coerce(InterpValue v, const std::string& /*qualifiedName*/) { return v; }

  /// Resolves a formal-array access to (actual array, shifted index).
  std::pair<ArrayId, std::vector<std::int64_t>> resolveElem(const std::string& name,
                                                            std::vector<std::int64_t> idx) {
    auto f = frame().arrayFormals.find(name);
    if (f != frame().arrayFormals.end()) {
      if (!f->second.known) throw InterpAbort{"unbound array formal '" + name + "'"};
      for (std::size_t d = 0; d < idx.size() && d < f->second.offset.size(); ++d)
        idx[d] += f->second.offset[d];
      return {f->second.actual, std::move(idx)};
    }
    auto id = frame().sym->arrayId(name);
    if (!id) throw InterpAbort{"unknown array '" + name + "'"};
    return {*id, std::move(idx)};
  }

  double readElem(ArrayId array, const std::vector<std::int64_t>& idx) {
    onRead(array, idx);
    auto& store = host_.arrays_[array];
    auto it = store.find(idx);
    return it == store.end() ? 0.0 : it->second;
  }

  void writeElem(ArrayId array, const std::vector<std::int64_t>& idx, double v) {
    onWrite(array, idx);
    host_.arrays_[array][idx] = v;
  }

  // ------------------------------------------------------------ evaluation
  InterpValue eval(const Expr& e) {
    tick();
    switch (e.kind) {
      case Expr::Kind::IntLit: return InterpValue::ofInt(e.intValue);
      case Expr::Kind::RealLit: return InterpValue::ofReal(e.realValue);
      case Expr::Kind::LogicalLit: return InterpValue::ofLogical(e.logicalValue);
      case Expr::Kind::VarRef: return readScalar(e.name);
      case Expr::Kind::ArrayRef: {
        std::vector<std::int64_t> idx;
        for (const ExprPtr& s : e.args) idx.push_back(eval(*s).asInt());
        auto [array, shifted] = resolveElem(e.name, std::move(idx));
        double v = readElem(array, shifted);
        // Integer arrays round-trip through the real store losslessly for
        // the magnitudes the corpus uses.
        if (frame().sym->typeOf(e.name) == BaseType::Integer)
          return InterpValue::ofInt(static_cast<std::int64_t>(v));
        return InterpValue::ofReal(v);
      }
      case Expr::Kind::Intrinsic: return evalIntrinsic(e);
      case Expr::Kind::Unary: {
        InterpValue v = eval(*e.args[0]);
        if (e.unOp == UnOp::Not) return InterpValue::ofLogical(!v.asLogical());
        if (v.type == BaseType::Integer) return InterpValue::ofInt(-v.i);
        return InterpValue::ofReal(-v.asReal());
      }
      case Expr::Kind::Binary: return evalBinary(e);
    }
    throw InterpAbort{"unreachable expression kind"};
  }

  InterpValue evalBinary(const Expr& e) {
    // Short-circuit logicals first.
    if (e.binOp == BinOp::And) {
      if (!eval(*e.args[0]).asLogical()) return InterpValue::ofLogical(false);
      return InterpValue::ofLogical(eval(*e.args[1]).asLogical());
    }
    if (e.binOp == BinOp::Or) {
      if (eval(*e.args[0]).asLogical()) return InterpValue::ofLogical(true);
      return InterpValue::ofLogical(eval(*e.args[1]).asLogical());
    }
    InterpValue a = eval(*e.args[0]);
    InterpValue b = eval(*e.args[1]);
    const bool ints = a.type == BaseType::Integer && b.type == BaseType::Integer;
    switch (e.binOp) {
      case BinOp::Add: return ints ? InterpValue::ofInt(a.i + b.i)
                                   : InterpValue::ofReal(a.asReal() + b.asReal());
      case BinOp::Sub: return ints ? InterpValue::ofInt(a.i - b.i)
                                   : InterpValue::ofReal(a.asReal() - b.asReal());
      case BinOp::Mul: return ints ? InterpValue::ofInt(a.i * b.i)
                                   : InterpValue::ofReal(a.asReal() * b.asReal());
      case BinOp::Div:
        if (ints) {
          if (b.i == 0) throw InterpAbort{"integer division by zero"};
          return InterpValue::ofInt(a.i / b.i);
        }
        return InterpValue::ofReal(a.asReal() / b.asReal());
      case BinOp::Pow:
        if (ints && b.i >= 0) {
          std::int64_t acc = 1;
          for (std::int64_t k = 0; k < b.i; ++k) acc *= a.i;
          return InterpValue::ofInt(acc);
        }
        return InterpValue::ofReal(std::pow(a.asReal(), b.asReal()));
      case BinOp::Lt: return InterpValue::ofLogical(a.asReal() < b.asReal());
      case BinOp::Le: return InterpValue::ofLogical(a.asReal() <= b.asReal());
      case BinOp::Gt: return InterpValue::ofLogical(a.asReal() > b.asReal());
      case BinOp::Ge: return InterpValue::ofLogical(a.asReal() >= b.asReal());
      case BinOp::Eq: return InterpValue::ofLogical(a.asReal() == b.asReal());
      case BinOp::Ne: return InterpValue::ofLogical(a.asReal() != b.asReal());
      default: throw InterpAbort{"unreachable binary op"};
    }
  }

  InterpValue evalIntrinsic(const Expr& e) {
    std::vector<InterpValue> args;
    for (const ExprPtr& a : e.args) args.push_back(eval(*a));
    auto req = [&](std::size_t n) {
      if (args.size() < n) throw InterpAbort{"intrinsic '" + e.name + "' needs arguments"};
    };
    const std::string& n = e.name;
    if (n == "max" || n == "amax1" || n == "max0") {
      req(1);
      InterpValue best = args[0];
      for (const InterpValue& v : args)
        if (v.asReal() > best.asReal()) best = v;
      return best;
    }
    if (n == "min" || n == "amin1" || n == "min0") {
      req(1);
      InterpValue best = args[0];
      for (const InterpValue& v : args)
        if (v.asReal() < best.asReal()) best = v;
      return best;
    }
    if (n == "mod") {
      req(2);
      if (args[0].type == BaseType::Integer && args[1].type == BaseType::Integer) {
        if (args[1].i == 0) throw InterpAbort{"MOD by zero"};
        return InterpValue::ofInt(args[0].i % args[1].i);
      }
      return InterpValue::ofReal(std::fmod(args[0].asReal(), args[1].asReal()));
    }
    if (n == "abs" || n == "iabs" || n == "dabs") {
      req(1);
      if (args[0].type == BaseType::Integer)
        return InterpValue::ofInt(args[0].i < 0 ? -args[0].i : args[0].i);
      return InterpValue::ofReal(std::fabs(args[0].asReal()));
    }
    if (n == "sqrt" || n == "dsqrt") {
      req(1);
      return InterpValue::ofReal(std::sqrt(args[0].asReal()));
    }
    if (n == "exp" || n == "dexp") {
      req(1);
      return InterpValue::ofReal(std::exp(args[0].asReal()));
    }
    if (n == "log" || n == "dlog") {
      req(1);
      return InterpValue::ofReal(std::log(args[0].asReal()));
    }
    if (n == "sin") return req(1), InterpValue::ofReal(std::sin(args[0].asReal()));
    if (n == "cos") return req(1), InterpValue::ofReal(std::cos(args[0].asReal()));
    if (n == "tan") return req(1), InterpValue::ofReal(std::tan(args[0].asReal()));
    if (n == "atan") return req(1), InterpValue::ofReal(std::atan(args[0].asReal()));
    if (n == "int" || n == "nint") return req(1), InterpValue::ofInt(args[0].asInt());
    if (n == "float" || n == "real" || n == "dble")
      return req(1), InterpValue::ofReal(args[0].asReal());
    if (n == "sign") {
      req(2);
      double mag = std::fabs(args[0].asReal());
      return InterpValue::ofReal(args[1].asReal() < 0 ? -mag : mag);
    }
    if (n == "dim") {
      req(2);
      double d = args[0].asReal() - args[1].asReal();
      return InterpValue::ofReal(d > 0 ? d : 0.0);
    }
    throw InterpAbort{"unimplemented intrinsic '" + e.name + "'"};
  }

  // ------------------------------------------------------------- execution
  Sig execBody(const std::vector<StmtPtr>& body) {
    std::unordered_map<int, std::size_t> labels;
    for (std::size_t k = 0; k < body.size(); ++k)
      if (body[k]->label != 0) labels[body[k]->label] = k;

    std::size_t pc = 0;
    while (pc < body.size()) {
      Sig s = execStmt(*body[pc]);
      if (s == Sig::Jump) {
        auto it = labels.find(jumpLabel_);
        if (it == labels.end()) return Sig::Jump;  // outer level resolves it
        pc = it->second;
        // The labeled statement itself executes next — unless it was the
        // jump source (a labeled GOTO would loop; the corpus has none).
        continue;
      }
      if (s == Sig::Return || s == Sig::Stop) return s;
      ++pc;
    }
    return Sig::Normal;
  }

  Sig execStmt(const Stmt& s) {
    tick();
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        InterpValue v = eval(*s.rhs);
        if (s.lhs->kind == Expr::Kind::VarRef) {
          writeScalar(s.lhs->name, v);
        } else {
          std::vector<std::int64_t> idx;
          for (const ExprPtr& sub : s.lhs->args) idx.push_back(eval(*sub).asInt());
          auto [array, shifted] = resolveElem(s.lhs->name, std::move(idx));
          writeElem(array, shifted, v.asReal());
        }
        return Sig::Normal;
      }
      case Stmt::Kind::If: {
        bool c = eval(*s.cond).asLogical();
        return execBody(c ? s.thenBody : s.elseBody);
      }
      case Stmt::Kind::Do:
        return execDo(s);
      case Stmt::Kind::Goto:
        jumpLabel_ = s.gotoLabel;
        return Sig::Jump;
      case Stmt::Kind::Continue:
        return Sig::Normal;
      case Stmt::Kind::Call:
        return execCall(s);
      case Stmt::Kind::Return:
        return Sig::Return;
      case Stmt::Kind::Stop:
        return Sig::Stop;
    }
    return Sig::Normal;
  }

  Sig execDo(const Stmt& s) {
    std::int64_t lo = eval(*s.lo).asInt();
    std::int64_t hi = eval(*s.hi).asInt();
    std::int64_t step = s.step ? eval(*s.step).asInt() : 1;
    if (step == 0) throw InterpAbort{"zero DO step"};
    if (cfg_.privatizeLoop == &s && privatizeNesting_ == 0)
      return execPrivatizedDo(s, lo, hi, step);

    const bool traced = cfg_.traceLoop == &s && traceNesting_ == 0;
    if (traced) {
      ++traceNesting_;
      host_.trace_.loop = &s;
      host_.trace_.loopEntry = snapshotScalars();
    }

    for (std::int64_t v = lo; step > 0 ? v <= hi : v >= hi; v += step) {
      writeScalar(s.doVar, InterpValue::ofInt(v));
      if (traced) beginTracedIteration();
      std::uint64_t stepsBefore = steps_;
      Sig sig = execBody(s.body);
      if (traced) endTracedIteration(steps_ - stepsBefore);
      if (sig == Sig::Jump) {
        if (traced) --traceNesting_;
        return Sig::Jump;  // premature exit: resolved by an enclosing level
      }
      if (sig == Sig::Return || sig == Sig::Stop) {
        if (traced) --traceNesting_;
        return sig;
      }
    }
    if (traced) --traceNesting_;
    return Sig::Normal;
  }

  /// The privatized-execution witness (see Config). Iterations run in a
  /// deterministic shuffled order; each gets fresh private copies of the
  /// privatized arrays; the sequentially-last iteration's copies are the
  /// copy-out values.
  Sig execPrivatizedDo(const Stmt& s, std::int64_t lo, std::int64_t hi, std::int64_t step) {
    std::vector<std::int64_t> iters;
    for (std::int64_t v = lo; step > 0 ? v <= hi : v >= hi; v += step) iters.push_back(v);
    if (iters.empty()) return Sig::Normal;
    const std::int64_t last = iters.back();
    // Deterministic shuffle (LCG-driven Fisher-Yates).
    std::uint64_t state = cfg_.scrambleSeed * 6364136223846793005ull + 1442695040888963407ull;
    for (std::size_t k = iters.size(); k > 1; --k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      std::swap(iters[k - 1], iters[(state >> 33) % k]);
    }

    using Store = std::map<std::vector<std::int64_t>, double>;
    std::map<ArrayId, Store> shared;
    std::map<ArrayId, Store> copyOut;
    for (ArrayId a : cfg_.privatizedArrays) shared[a] = host_.arrays_[a];

    ++privatizeNesting_;
    for (std::int64_t v : iters) {
      // Fresh (undefined-reads-as-zero) private copies.
      for (ArrayId a : cfg_.privatizedArrays) host_.arrays_[a].clear();
      writeScalar(s.doVar, InterpValue::ofInt(v));
      Sig sig = execBody(s.body);
      if (sig != Sig::Normal) {
        --privatizeNesting_;
        throw InterpAbort{"privatized loop took a non-normal exit"};
      }
      if (v == last)
        for (ArrayId a : cfg_.privatizedArrays) copyOut[a] = host_.arrays_[a];
    }
    --privatizeNesting_;

    // Copy-out: the last iteration's private values become the live ones.
    for (ArrayId a : cfg_.privatizedArrays) {
      host_.arrays_[a] = shared[a];
      for (const auto& [idx, val] : copyOut[a]) host_.arrays_[a][idx] = val;
    }
    return Sig::Normal;
  }

  Sig execCall(const Stmt& s) {
    const Procedure* callee = program_.findProcedure(s.callee);
    if (!callee) throw InterpAbort{"call to unknown subroutine '" + s.callee + "'"};
    const ProcSymbols& calleeSym = sema_.of(*callee);

    Frame next{callee, &calleeSym, {}, {}};
    for (std::size_t k = 0; k < callee->params.size(); ++k) {
      const std::string& formal = callee->params[k];
      const Expr& actual = *s.args[k];
      if (calleeSym.isArray(formal)) {
        ArrayRef ref;
        if (actual.kind == Expr::Kind::VarRef && frame().sym->isArray(actual.name)) {
          auto resolved = resolveWholeArray(actual.name);
          ref.known = true;
          ref.actual = resolved.first;
          // offset accumulates lower-bound shifts: formal idx + off = actual.
          const ArrayShape& fshape = sema_.arrays.shape(*calleeSym.arrayId(formal));
          const ArrayShape& ashape = sema_.arrays.shape(ref.actual);
          for (int d = 0; d < fshape.rank(); ++d) {
            std::int64_t flb = evalBound(fshape.declaredDims[d].lo, calleeSym, 1);
            std::int64_t alb =
                d < ashape.rank() ? evalBound(ashape.declaredDims[d].lo, calleeSym, 1) : 1;
            std::int64_t chain = d < static_cast<int>(resolved.second.size())
                                     ? resolved.second[d]
                                     : 0;
            ref.offset.push_back(alb - flb + chain);
          }
        } else if (actual.kind == Expr::Kind::ArrayRef && frame().sym->isArray(actual.name)) {
          // Element-offset passing (1-D): formal j -> actual j - lbF + k.
          std::vector<std::int64_t> idx;
          for (const ExprPtr& sub : actual.args) idx.push_back(eval(*sub).asInt());
          auto [array, shifted] = resolveElem(actual.name, std::move(idx));
          ref.known = true;
          ref.actual = array;
          const ArrayShape& fshape = sema_.arrays.shape(*calleeSym.arrayId(formal));
          std::int64_t flb = evalBound(fshape.declaredDims[0].lo, calleeSym, 1);
          ref.offset.push_back(shifted[0] - flb);
        }
        next.arrayFormals.emplace(formal, std::move(ref));
        continue;
      }
      ScalarRef ref;
      if (actual.kind == Expr::Kind::VarRef && frame().sym->isScalar(actual.name)) {
        // Pass through an existing by-ref chain if the actual is itself a
        // formal of the current frame.
        auto chained = frame().scalarFormals.find(actual.name);
        if (chained != frame().scalarFormals.end()) {
          ref = chained->second;
        } else {
          ref.kind = ScalarRef::Kind::Global;
          ref.global = *frame().sym->scalarId(actual.name);
        }
      } else if (actual.kind == Expr::Kind::ArrayRef && frame().sym->isArray(actual.name)) {
        std::vector<std::int64_t> idx;
        for (const ExprPtr& sub : actual.args) idx.push_back(eval(*sub).asInt());
        auto [array, shifted] = resolveElem(actual.name, std::move(idx));
        ref.kind = ScalarRef::Kind::ArrayElem;
        ref.array = array;
        ref.index = std::move(shifted);
      } else {
        ref.kind = ScalarRef::Kind::Temp;
        ref.temp = eval(actual);
      }
      next.scalarFormals.emplace(formal, std::move(ref));
    }

    frames_.push_back(std::move(next));
    Sig sig = execBody(callee->body);
    frames_.pop_back();
    if (sig == Sig::Jump) throw InterpAbort{"GOTO escaped subroutine '" + s.callee + "'"};
    if (sig == Sig::Stop) return Sig::Stop;
    return Sig::Normal;
  }

  /// Resolves an array name through the frame's formal chain.
  std::pair<ArrayId, std::vector<std::int64_t>> resolveWholeArray(const std::string& name) {
    auto f = frame().arrayFormals.find(name);
    if (f != frame().arrayFormals.end()) {
      if (!f->second.known) throw InterpAbort{"unbound array formal '" + name + "'"};
      return {f->second.actual, f->second.offset};
    }
    return {*frame().sym->arrayId(name), {}};
  }

  std::int64_t evalBound(const SymExpr& e, const ProcSymbols& sym, std::int64_t dflt) {
    (void)sym;
    if (auto c = e.constantValue()) return *c;
    // Symbolic declared bound: evaluate under current scalars.
    Binding b;
    for (const auto& [vid, val] : host_.scalars_)
      if (val.type == BaseType::Integer) b[vid] = val.i;
    if (auto v = e.evaluate(b)) return *v;
    return dflt;
  }

  // ---------------------------------------------------------------- tracing
  Binding snapshotScalars() const {
    Binding entry;
    for (const auto& [vid, val] : host_.scalars_) {
      if (val.type == BaseType::Integer)
        entry[vid] = val.i;
      else if (val.type == BaseType::Logical)
        entry[vid] = val.l ? 1 : 0;
      else if (val.r == static_cast<double>(static_cast<std::int64_t>(val.r)))
        entry[vid] = static_cast<std::int64_t>(val.r);
    }
    return entry;
  }

  void beginTracedIteration() {
    LoopTrace& t = host_.trace_;
    t.iterEntry.push_back(snapshotScalars());
    t.modPerIter.emplace_back();
    t.uePerIter.emplace_back();
    deFlags_.clear();
    iterActive_ = true;
  }

  void endTracedIteration(std::uint64_t ops) {
    LoopTrace& t = host_.trace_;
    t.iterOps.push_back(ops);
    // DE_i: elements whose last access was a read.
    std::map<ArrayId, ElementSet> de;
    for (const auto& [key, exposed] : deFlags_)
      if (exposed) de[key.first].insert(key.second);
    t.dePerIter.push_back(std::move(de));
    iterActive_ = false;
  }

  void onRead(ArrayId array, const std::vector<std::int64_t>& idx) {
    if (!iterActive_) return;
    LoopTrace& t = host_.trace_;
    auto& mod = t.modPerIter.back()[array];
    if (!mod.count(idx)) t.uePerIter.back()[array].insert(idx);
    if (!t.modWhole[array].count(idx)) t.ueWhole[array].insert(idx);
    deFlags_[{array, idx}] = true;
  }

  void onWrite(ArrayId array, const std::vector<std::int64_t>& idx) {
    if (!iterActive_) return;
    LoopTrace& t = host_.trace_;
    t.modPerIter.back()[array].insert(idx);
    t.modWhole[array].insert(idx);
    deFlags_[{array, idx}] = false;
  }

  Interpreter& host_;
  const Interpreter::Config& cfg_;
  const Program& program_;
  const SemaResult& sema_;
  std::vector<Frame> frames_;
  std::uint64_t steps_ = 0;
  int jumpLabel_ = 0;
  int traceNesting_ = 0;
  int privatizeNesting_ = 0;
  bool iterActive_ = false;
  std::map<std::pair<ArrayId, std::vector<std::int64_t>>, bool> deFlags_;
};

Interpreter::Interpreter(const Program& program, const SemaResult& sema)
    : program_(program), sema_(sema) {}

Interpreter::Result Interpreter::run(const Config& config) {
  trace_ = LoopTrace{};
  arrays_.clear();
  scalars_.clear();
  InterpImpl impl(*this, config);
  return impl.run();
}

}  // namespace panorama
