// SCC condensation (§5.4): cycles produced by backward GOTOs are collapsed
// into single Condensed nodes whose summaries the analyzer approximates
// conservatively. Tarjan's algorithm, iterative post-processing.
#include <algorithm>
#include <functional>

#include "panorama/hsg/hsg.h"

namespace panorama {

namespace {

struct TarjanState {
  std::vector<int> index;
  std::vector<int> low;
  std::vector<bool> onStack;
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> sccs;
};

void strongConnect(const HsgGraph& g, int v, TarjanState& st) {
  st.index[v] = st.low[v] = st.counter++;
  st.stack.push_back(v);
  st.onStack[v] = true;
  for (int w : g.node(v).succs) {
    if (st.index[w] < 0) {
      strongConnect(g, w, st);
      st.low[v] = std::min(st.low[v], st.low[w]);
    } else if (st.onStack[w]) {
      st.low[v] = std::min(st.low[v], st.index[w]);
    }
  }
  if (st.low[v] == st.index[v]) {
    std::vector<int> scc;
    int w;
    do {
      w = st.stack.back();
      st.stack.pop_back();
      st.onStack[w] = false;
      scc.push_back(w);
    } while (w != v);
    st.sccs.push_back(std::move(scc));
  }
}

void collectStmts(const HsgNode& n, std::vector<const Stmt*>& out) {
  out.insert(out.end(), n.stmts.begin(), n.stmts.end());
  if (n.callStmt) out.push_back(n.callStmt);
  if (n.loopStmt) out.push_back(n.loopStmt);
  if (n.body)
    for (const auto& inner : n.body->nodes) collectStmts(*inner, out);
  out.insert(out.end(), n.condensed.begin(), n.condensed.end());
}

bool hasSelfLoop(const HsgGraph& g, int v) {
  const auto& succs = g.node(v).succs;
  return std::find(succs.begin(), succs.end(), v) != succs.end();
}

}  // namespace

void condenseCycles(HsgGraph& g) {
  const int n = static_cast<int>(g.nodes.size());
  TarjanState st;
  st.index.assign(n, -1);
  st.low.assign(n, 0);
  st.onStack.assign(n, false);
  for (int v = 0; v < n; ++v)
    if (st.index[v] < 0) strongConnect(g, v, st);

  bool any = std::any_of(st.sccs.begin(), st.sccs.end(), [&](const std::vector<int>& scc) {
    return scc.size() > 1 || hasSelfLoop(g, scc[0]);
  });
  if (!any) return;

  // Map every condensed member to its replacement node.
  std::vector<int> replacement(n);
  for (int v = 0; v < n; ++v) replacement[v] = v;
  for (const std::vector<int>& scc : st.sccs) {
    if (scc.size() == 1 && !hasSelfLoop(g, scc[0])) continue;
    auto node = std::make_unique<HsgNode>();
    node->kind = HsgNode::Kind::Condensed;
    node->id = static_cast<int>(g.nodes.size());
    for (int v : scc) collectStmts(g.node(v), node->condensed);
    int condensedId = node->id;
    g.nodes.push_back(std::move(node));
    for (int v : scc) replacement[v] = condensedId;
  }
  replacement.resize(g.nodes.size());
  for (std::size_t v = n; v < g.nodes.size(); ++v) replacement[v] = static_cast<int>(v);

  // Rewire edges through the replacement map, dropping intra-SCC edges.
  std::vector<std::vector<int>> succs(g.nodes.size());
  for (int v = 0; v < n; ++v) {
    for (int w : g.node(v).succs) {
      int rv = replacement[v];
      int rw = replacement[w];
      if (rv == rw) continue;
      if (std::find(succs[rv].begin(), succs[rv].end(), rw) == succs[rv].end())
        succs[rv].push_back(rw);
    }
  }
  for (auto& nd : g.nodes) {
    nd->succs.clear();
    nd->preds.clear();
  }
  for (std::size_t v = 0; v < succs.size(); ++v) {
    for (int w : succs[v]) {
      g.node(static_cast<int>(v)).succs.push_back(w);
      g.node(w).preds.push_back(static_cast<int>(v));
    }
  }
  // Members of condensed SCCs become unreachable; entry/exit stay intact
  // (entry/exit can never be inside a cycle: entry has no preds, exit no
  // succs).
  g.entry = replacement[g.entry];
  g.exit = replacement[g.exit];
}

}  // namespace panorama
