#include "panorama/hsg/hsg.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace panorama {

std::vector<int> HsgGraph::topoOrder() const {
  // DFS post-order from the entry, reversed. Unreachable nodes (condensed
  // SCC members) are excluded by construction.
  std::vector<int> order;
  std::vector<char> state(nodes.size(), 0);
  std::function<void(int)> dfs = [&](int v) {
    state[static_cast<std::size_t>(v)] = 1;
    for (int w : node(v).succs)
      if (!state[static_cast<std::size_t>(w)]) dfs(w);
    order.push_back(v);
  };
  if (entry >= 0) dfs(entry);
  std::reverse(order.begin(), order.end());
  return order;
}

bool HsgGraph::isDag() const {
  std::vector<char> state(nodes.size(), 0);  // 0 unseen, 1 on path, 2 done
  bool ok = true;
  std::function<void(int)> dfs = [&](int v) {
    state[static_cast<std::size_t>(v)] = 1;
    for (int w : node(v).succs) {
      char s = state[static_cast<std::size_t>(w)];
      if (s == 1) ok = false;
      if (s == 0) dfs(w);
    }
    state[static_cast<std::size_t>(v)] = 2;
  };
  if (entry >= 0) dfs(entry);
  for (const auto& n : nodes)
    if (n->body && !n->body->isDag()) ok = false;
  return ok;
}

namespace {

const char* kindName(HsgNode::Kind k) {
  switch (k) {
    case HsgNode::Kind::Entry: return "entry";
    case HsgNode::Kind::Exit: return "exit";
    case HsgNode::Kind::Block: return "block";
    case HsgNode::Kind::Cond: return "cond";
    case HsgNode::Kind::Loop: return "loop";
    case HsgNode::Kind::Call: return "call";
    case HsgNode::Kind::Condensed: return "condensed";
  }
  return "?";
}

}  // namespace

std::string HsgGraph::str(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (int id : topoOrder()) {
    const HsgNode& n = node(id);
    os << pad << '#' << id << ' ' << kindName(n.kind);
    if (n.kind == HsgNode::Kind::Cond && n.cond) os << " (" << toString(*n.cond) << ")";
    if (n.kind == HsgNode::Kind::Loop && n.loopStmt)
      os << " do " << n.loopStmt->doVar << (n.prematureExit ? " [premature-exit]" : "");
    if (n.kind == HsgNode::Kind::Call && n.callStmt) os << " -> " << n.callStmt->callee;
    if (n.kind == HsgNode::Kind::Block && !n.stmts.empty())
      os << " [" << n.stmts.size() << " stmt(s)]";
    if (n.kind == HsgNode::Kind::Condensed)
      os << " [" << n.condensed.size() << " stmt(s)]";
    os << " ->";
    for (int s : n.succs) os << ' ' << s;
    os << '\n';
    if (n.body) os << n.body->str(indent + 1);
  }
  return os.str();
}

}  // namespace panorama
