// Flow-graph construction from the structured AST plus GOTO resolution.
//
// Each nesting level (procedure body, loop body) is lowered independently:
// statements become nodes with fallthrough edges, IF statements become
// condition nodes (the paper keeps each IF condition in its own node) with
// branch subchains joining afterwards, and GOTOs are resolved in a second
// pass against the labels of the same level. A GOTO whose target lives in an
// enclosing level is a premature exit: the edge is routed to this level's
// exit and every loop between source and target is marked `prematureExit`.
#include <algorithm>
#include <unordered_map>

#include "panorama/hsg/hsg.h"

namespace panorama {

namespace {

class LevelBuilder {
 public:
  /// `outerLabels` maps labels visible in enclosing levels (for premature
  /// exit detection only).
  LevelBuilder(const std::vector<StmtPtr>& stmts, const std::vector<int>* outerLabels,
               DiagnosticEngine& diags)
      : stmts_(stmts), outerLabels_(outerLabels), diags_(diags) {}

  std::unique_ptr<HsgGraph> build(bool& sawPrematureExit) {
    graph_ = std::make_unique<HsgGraph>();
    graph_->entry = newNode(HsgNode::Kind::Entry);
    graph_->exit = newNode(HsgNode::Kind::Exit);

    int tail = graph_->entry;  // node wanting a fallthrough edge; -1 if none
    for (const StmtPtr& s : stmts_) tail = lowerStmt(*s, tail);
    if (tail >= 0) addEdge(tail, graph_->exit);

    resolveGotos();
    sawPrematureExit = sawPrematureExit_;
    condenseCycles(*graph_);
    return std::move(graph_);
  }

 private:
  int newNode(HsgNode::Kind kind) {
    auto n = std::make_unique<HsgNode>();
    n->kind = kind;
    n->id = static_cast<int>(graph_->nodes.size());
    graph_->nodes.push_back(std::move(n));
    return static_cast<int>(graph_->nodes.size()) - 1;
  }

  void addEdge(int from, int to) {
    HsgNode& f = graph_->node(from);
    if (std::find(f.succs.begin(), f.succs.end(), to) == f.succs.end() ||
        f.kind == HsgNode::Kind::Cond) {
      f.succs.push_back(to);
      graph_->node(to).preds.push_back(from);
    }
  }

  void registerLabel(int label, int nodeId) {
    if (label == 0) return;
    if (!labelNode_.emplace(label, nodeId).second)
      diags_.error({}, "duplicate statement label " + std::to_string(label));
  }

  /// Lowers one statement. `tail` is the node whose fallthrough edge is
  /// pending (-1 after a GOTO/RETURN). Returns the new pending tail.
  int lowerStmt(const Stmt& s, int tail) {
    // A labeled statement is a join target: it must start a fresh node.
    switch (s.kind) {
      case Stmt::Kind::Assign:
      case Stmt::Kind::Continue: {
        int block;
        if (tail >= 0 && s.label == 0 && graph_->node(tail).kind == HsgNode::Kind::Block) {
          block = tail;  // extend the current basic block
        } else {
          block = newNode(HsgNode::Kind::Block);
          if (tail >= 0) addEdge(tail, block);
        }
        graph_->node(block).stmts.push_back(&s);
        registerLabel(s.label, block);
        return block;
      }
      case Stmt::Kind::Goto: {
        int node = newNode(HsgNode::Kind::Block);
        graph_->node(node).stmts.push_back(&s);
        if (tail >= 0) addEdge(tail, node);
        registerLabel(s.label, node);
        pendingGotos_.push_back({node, s.gotoLabel});
        return -1;  // no fallthrough
      }
      case Stmt::Kind::Return:
      case Stmt::Kind::Stop: {
        int node = newNode(HsgNode::Kind::Block);
        graph_->node(node).stmts.push_back(&s);
        if (tail >= 0) addEdge(tail, node);
        registerLabel(s.label, node);
        addEdge(node, graph_->exit);
        returnNodes_.push_back(node);
        return -1;
      }
      case Stmt::Kind::Call: {
        int node = newNode(HsgNode::Kind::Call);
        graph_->node(node).callStmt = &s;
        if (tail >= 0) addEdge(tail, node);
        registerLabel(s.label, node);
        return node;
      }
      case Stmt::Kind::Do: {
        int node = newNode(HsgNode::Kind::Loop);
        HsgNode& loop = graph_->node(node);
        loop.loopStmt = &s;
        std::vector<int> visible;
        for (const auto& [lbl, id] : labelNode_) visible.push_back(lbl);
        // Labels of enclosing levels stay visible for premature-exit checks.
        if (outerLabels_)
          visible.insert(visible.end(), outerLabels_->begin(), outerLabels_->end());
        // Labels later in this level are also legitimate premature-exit
        // targets; collect every label of the whole level.
        collectLevelLabels(visible);
        bool premature = false;
        loop.body = LevelBuilder(s.body, &visible, diags_).build(premature);
        loop.prematureExit = premature || bodyReturns(*loop.body);
        if (tail >= 0) addEdge(tail, node);
        registerLabel(s.label, node);
        return node;
      }
      case Stmt::Kind::If: {
        int condNode = newNode(HsgNode::Kind::Cond);
        graph_->node(condNode).cond = s.cond.get();
        if (tail >= 0) addEdge(tail, condNode);
        registerLabel(s.label, condNode);
        int join = newNode(HsgNode::Kind::Block);  // empty join block

        // True branch: succs[0].
        int tTail = condNode;
        bool first = true;
        for (const StmtPtr& c : s.thenBody) {
          int next = lowerBranchStmt(*c, tTail, first, condNode, /*branchTrue=*/true);
          first = false;
          tTail = next;
        }
        if (s.thenBody.empty()) addEdge(condNode, join);
        else if (tTail >= 0) addEdge(tTail, join);

        // False branch: succs[1].
        int fTail = condNode;
        first = true;
        for (const StmtPtr& c : s.elseBody) {
          int next = lowerBranchStmt(*c, fTail, first, condNode, /*branchTrue=*/false);
          first = false;
          fTail = next;
        }
        if (s.elseBody.empty()) addEdge(condNode, join);
        else if (fTail >= 0) addEdge(fTail, join);
        return join;
      }
    }
    return tail;
  }

  /// Lowers the first/branch statements of an IF arm. The first statement of
  /// an arm must NOT merge into the condition node's preceding block, so it
  /// always opens fresh nodes.
  int lowerBranchStmt(const Stmt& s, int tail, bool first, int condNode, bool branchTrue) {
    (void)branchTrue;
    if (!first) return lowerStmt(s, tail);
    // Force a fresh node: temporarily lower with tail = -1 and wire manually.
    std::size_t before = graph_->nodes.size();
    int newTail = lowerStmt(s, -1);
    // The first node created for this statement is the branch head.
    if (graph_->nodes.size() > before) {
      int head = static_cast<int>(before);
      addEdge(condNode, head);
    } else {
      // No node was created (cannot happen with current kinds); fall back.
      addEdge(condNode, graph_->exit);
    }
    return newTail;
  }

  void collectLevelLabels(std::vector<int>& out) const {
    std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& body) {
      for (const StmtPtr& s : body) {
        if (s->label != 0) out.push_back(s->label);
        walk(s->thenBody);
        walk(s->elseBody);
        // Do NOT descend into nested loops: jumping into a loop is illegal.
      }
    };
    walk(stmts_);
  }

  bool bodyReturns(const HsgGraph& g) const {
    for (const auto& n : g.nodes) {
      for (const Stmt* st : n->stmts)
        if (st->kind == Stmt::Kind::Return || st->kind == Stmt::Kind::Stop) return true;
      if (n->body && bodyReturns(*n->body)) return true;
    }
    return false;
  }

  void resolveGotos() {
    for (const auto& [node, label] : pendingGotos_) {
      auto it = labelNode_.find(label);
      if (it != labelNode_.end()) {
        addEdge(node, it->second);
        continue;
      }
      bool outer = outerLabels_ && std::find(outerLabels_->begin(), outerLabels_->end(),
                                             label) != outerLabels_->end();
      if (outer) {
        // Premature exit from this level: route to the exit, flag the level.
        addEdge(node, graph_->exit);
        sawPrematureExit_ = true;
      } else {
        diags_.error({}, "GOTO to unknown label " + std::to_string(label));
        addEdge(node, graph_->exit);
      }
    }
  }

  const std::vector<StmtPtr>& stmts_;
  const std::vector<int>* outerLabels_;
  DiagnosticEngine& diags_;
  std::unique_ptr<HsgGraph> graph_;
  std::unordered_map<int, int> labelNode_;
  std::vector<std::pair<int, int>> pendingGotos_;  // (node, target label)
  std::vector<int> returnNodes_;
  bool sawPrematureExit_ = false;
};

}  // namespace

ProcedureHsg buildProcedureHsg(const Procedure& proc, DiagnosticEngine& diags) {
  bool premature = false;
  ProcedureHsg ph;
  ph.proc = &proc;
  auto g = LevelBuilder(proc.body, nullptr, diags).build(premature);
  ph.graph = std::move(*g);
  return ph;
}

Hsg buildHsg(const Program& program, const SemaResult& sema, DiagnosticEngine& diags) {
  (void)sema;
  Hsg hsg;
  for (const Procedure& proc : program.procedures)
    hsg.procs.emplace(proc.name, buildProcedureHsg(proc, diags));
  return hsg;
}

}  // namespace panorama
