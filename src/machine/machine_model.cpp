#include "panorama/machine/machine_model.h"

#include <algorithm>

namespace panorama {

SpeedupEstimate estimateSpeedup(const std::vector<std::uint64_t>& iterOps,
                                const MachineConfig& config) {
  SpeedupEstimate out;
  for (std::uint64_t ops : iterOps) out.serialOps += static_cast<double>(ops);
  if (iterOps.empty() || config.processors <= 0) return out;

  // Block scheduling: processor p takes a contiguous chunk; the parallel
  // time is the heaviest chunk.
  const std::size_t n = iterOps.size();
  const std::size_t p = static_cast<std::size_t>(config.processors);
  const std::size_t chunk = (n + p - 1) / p;
  double heaviest = 0.0;
  for (std::size_t start = 0; start < n; start += chunk) {
    double sum = 0.0;
    for (std::size_t k = start; k < std::min(n, start + chunk); ++k)
      sum += static_cast<double>(iterOps[k]);
    heaviest = std::max(heaviest, sum);
  }
  double vf = config.vectorFactor > 0 ? config.vectorFactor : 1.0;
  out.parallelOps = heaviest / vf + config.forkJoinOverhead;
  out.speedup = out.parallelOps > 0 ? out.serialOps / out.parallelOps : 1.0;
  return out;
}

}  // namespace panorama
