#include "panorama/ast/ast.h"

#include <algorithm>

namespace panorama {

ExprPtr Expr::intLit(std::int64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::IntLit;
  e->intValue = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::realLit(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::RealLit;
  e->realValue = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::logicalLit(bool v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::LogicalLit;
  e->logicalValue = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr Expr::arrayRef(std::string name, std::vector<ExprPtr> subs, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::ArrayRef;
  e->name = std::move(name);
  e->args = std::move(subs);
  e->loc = loc;
  return e;
}

ExprPtr Expr::intrinsic(std::string name, std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Intrinsic;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

ExprPtr Expr::binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Binary;
  e->binOp = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  e->loc = loc;
  return e;
}

ExprPtr Expr::unary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Unary;
  e->unOp = op;
  e->args.push_back(std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->intValue = intValue;
  e->realValue = realValue;
  e->logicalValue = logicalValue;
  e->name = name;
  e->binOp = binOp;
  e->unOp = unOp;
  e->args.reserve(args.size());
  for (const ExprPtr& a : args) e->args.push_back(a->clone());
  return e;
}

const VarDecl* Procedure::findDecl(std::string_view name) const {
  auto it = std::find_if(decls.begin(), decls.end(),
                         [&](const VarDecl& d) { return d.name == name; });
  return it == decls.end() ? nullptr : &*it;
}

const Procedure* Program::findProcedure(std::string_view name) const {
  auto it = std::find_if(procedures.begin(), procedures.end(),
                         [&](const Procedure& p) { return p.name == name; });
  return it == procedures.end() ? nullptr : &*it;
}

}  // namespace panorama
