#include "panorama/ast/sema.h"

#include <algorithm>
#include <functional>
#include <set>

namespace panorama {

namespace {

const std::set<std::string, std::less<>>& intrinsics() {
  static const std::set<std::string, std::less<>> names{
      "max", "min", "mod", "abs", "iabs", "sqrt", "exp", "log", "sin", "cos",
      "tan", "atan", "sign", "dim", "int", "nint", "float", "real", "dble",
      "amax1", "amin1", "max0", "min0", "dabs", "dsqrt", "dexp", "dlog"};
  return names;
}

BaseType implicitType(std::string_view name) {
  return !name.empty() && name[0] >= 'i' && name[0] <= 'n' ? BaseType::Integer
                                                           : BaseType::Real;
}

/// Walks every expression of a statement tree.
void forEachExpr(std::vector<StmtPtr>& body, const std::function<void(ExprPtr&)>& fn) {
  std::function<void(StmtPtr&)> visitStmt = [&](StmtPtr& s) {
    if (!s) return;
    if (s->lhs) fn(s->lhs);
    if (s->rhs) fn(s->rhs);
    if (s->cond) fn(s->cond);
    if (s->lo) fn(s->lo);
    if (s->hi) fn(s->hi);
    if (s->step) fn(s->step);
    for (ExprPtr& a : s->args) fn(a);
    for (StmtPtr& c : s->thenBody) visitStmt(c);
    for (StmtPtr& c : s->elseBody) visitStmt(c);
    for (StmtPtr& c : s->body) visitStmt(c);
  };
  for (StmtPtr& s : body) visitStmt(s);
}

void forEachStmt(std::vector<StmtPtr>& body, const std::function<void(Stmt&)>& fn) {
  std::function<void(StmtPtr&)> visitStmt = [&](StmtPtr& s) {
    if (!s) return;
    fn(*s);
    for (StmtPtr& c : s->thenBody) visitStmt(c);
    for (StmtPtr& c : s->elseBody) visitStmt(c);
    for (StmtPtr& c : s->body) visitStmt(c);
  };
  for (StmtPtr& s : body) visitStmt(s);
}

class Analyzer {
 public:
  Analyzer(Program& program, DiagnosticEngine& diags) : program_(program), diags_(diags) {}

  /// Session variant: intern into persistent tables (ids stable across
  /// submits); array re-declarations update the stored shape.
  Analyzer(Program& program, DiagnosticEngine& diags, SymbolTable symbols, ArrayTable arrays)
      : program_(program), diags_(diags), updateShapes_(true) {
    result_.symbols = std::move(symbols);
    result_.arrays = std::move(arrays);
  }

  std::optional<SemaResult> run() {
    for (Procedure& proc : program_.procedures) {
      if (result_.procs.contains(proc.name))
        diags_.error(proc.loc, "duplicate procedure '" + proc.name + "'");
      analyzeProcedure(proc);
      if (proc.isMain) result_.main = &proc;
    }
    if (!result_.main && !program_.procedures.empty()) result_.main = &program_.procedures[0];
    checkCalls();
    if (!topoSort()) return std::nullopt;
    if (diags_.hasErrors()) return std::nullopt;
    return std::move(result_);
  }

 private:
  std::string commonKeyFor(const Procedure& proc, std::string_view var) const {
    for (const CommonBlock& blk : proc.commons) {
      for (const std::string& v : blk.vars) {
        if (v == var) return (blk.name.empty() ? std::string("blank") : blk.name) + "::" + v;
      }
    }
    return "";
  }

  void analyzeProcedure(Procedure& proc) {
    ProcSymbols sym;
    sym.proc = &proc;

    // PARAMETER constants fold eagerly, in order.
    for (const ParamConst& pc : proc.paramConsts) {
      SymExpr value = lowerInt(*pc.value, sym);
      if (value.isPoisoned())
        diags_.error(proc.loc, "PARAMETER '" + pc.name + "' is not a constant expression");
      sym.consts[pc.name] = std::move(value);
    }

    // Declared names: arrays get interned shapes, scalars get global ids.
    auto internScalar = [&](const std::string& name, BaseType type) {
      if (sym.scalars.contains(name) || sym.consts.contains(name)) return;
      std::string common = commonKeyFor(proc, name);
      std::string key = common.empty() ? proc.name + "::" + name : common;
      sym.scalars.emplace(name, result_.symbols.intern(key));
      sym.types.emplace(name, type);
    };

    for (const VarDecl& d : proc.decls) {
      if (!d.isArray()) {
        internScalar(d.name, d.type);
      }
    }
    for (const std::string& p : proc.params) {
      const VarDecl* d = proc.findDecl(p);
      if (!d || !d->isArray()) internScalar(p, d ? d->type : implicitType(p));
    }

    // Arrays (after scalars so symbolic bounds resolve).
    for (const VarDecl& d : proc.decls) {
      if (!d.isArray()) continue;
      std::vector<SymRange> shape;
      for (const VarDecl::DimBound& b : d.dims) {
        SymExpr lo = b.lo ? lowerInt(*b.lo, sym) : SymExpr::constant(1);
        SymExpr up = b.up ? lowerInt(*b.up, sym) : SymExpr::poisoned();  // '*'
        shape.push_back(SymRange{std::move(lo), std::move(up), SymExpr::constant(1)});
      }
      std::string common = commonKeyFor(proc, d.name);
      std::string key = common.empty() ? proc.name + "::" + d.name : common;
      sym.arrayIds.emplace(d.name, updateShapes_
                                       ? result_.arrays.internOrUpdate(key, std::move(shape))
                                       : result_.arrays.intern(key, std::move(shape)));
      sym.types.emplace(d.name, d.type);
    }

    // Implicit scalars: any name referenced but not declared.
    forEachExpr(proc.body, [&](ExprPtr& e) {
      std::function<void(Expr&)> visit = [&](Expr& x) {
        if (x.kind == Expr::Kind::VarRef && !sym.isArray(x.name) && !sym.consts.contains(x.name))
          internScalar(x.name, implicitType(x.name));
        for (ExprPtr& a : x.args) visit(*a);
      };
      visit(*e);
    });
    forEachStmt(proc.body, [&](Stmt& s) {
      if (s.kind == Stmt::Kind::Do && !s.doVar.empty() && !sym.isArray(s.doVar))
        internScalar(s.doVar, implicitType(s.doVar));
    });

    // Classify name(args) references: array element, intrinsic, or error.
    forEachExpr(proc.body, [&](ExprPtr& e) {
      std::function<void(Expr&)> visit = [&](Expr& x) {
        for (ExprPtr& a : x.args) visit(*a);
        if (x.kind != Expr::Kind::ArrayRef) return;
        if (sym.isArray(x.name)) {
          auto shape = result_.arrays.shape(*sym.arrayId(x.name));
          if (static_cast<int>(x.args.size()) != shape.rank())
            diags_.error(x.loc, "array '" + x.name + "' expects " +
                                    std::to_string(shape.rank()) + " subscript(s), got " +
                                    std::to_string(x.args.size()));
          return;
        }
        if (isIntrinsicName(x.name)) {
          x.kind = Expr::Kind::Intrinsic;
          return;
        }
        diags_.error(x.loc, "'" + x.name + "' is neither a declared array nor an intrinsic");
      };
      visit(*e);
    });

    result_.procs.emplace(proc.name, std::move(sym));
  }

  void checkCalls() {
    for (Procedure& proc : program_.procedures) {
      forEachStmt(proc.body, [&](Stmt& s) {
        if (s.kind != Stmt::Kind::Call) return;
        const Procedure* callee = program_.findProcedure(s.callee);
        if (!callee) {
          diags_.error(s.loc, "call to undefined subroutine '" + s.callee + "'");
          return;
        }
        if (callee->params.size() != s.args.size())
          diags_.error(s.loc, "subroutine '" + s.callee + "' expects " +
                                  std::to_string(callee->params.size()) + " argument(s), got " +
                                  std::to_string(s.args.size()));
        edges_[proc.name].insert(s.callee);
      });
    }
  }

  bool topoSort() {
    // DFS with cycle detection; emit callees before callers.
    std::map<std::string, int> state;  // 0 unseen, 1 in progress, 2 done
    bool ok = true;
    std::function<void(const std::string&)> dfs = [&](const std::string& name) {
      int& st = state[name];
      if (st == 2) return;
      if (st == 1) {
        diags_.error({}, "recursive call cycle through '" + name + "' (unsupported)");
        ok = false;
        return;
      }
      st = 1;
      for (const std::string& callee : edges_[name])
        if (program_.findProcedure(callee)) dfs(callee);
      st = 2;
      if (const Procedure* p = program_.findProcedure(name))
        result_.bottomUpOrder.push_back(p);
    };
    for (Procedure& proc : program_.procedures) dfs(proc.name);
    return ok;
  }

  Program& program_;
  DiagnosticEngine& diags_;
  SemaResult result_;
  std::map<std::string, std::set<std::string>> edges_;
  bool updateShapes_ = false;
};

}  // namespace

std::optional<VarId> ProcSymbols::scalarId(std::string_view name) const {
  auto it = scalars.find(std::string(name));
  if (it == scalars.end()) return std::nullopt;
  return it->second;
}

std::optional<ArrayId> ProcSymbols::arrayId(std::string_view name) const {
  auto it = arrayIds.find(std::string(name));
  if (it == arrayIds.end()) return std::nullopt;
  return it->second;
}

BaseType ProcSymbols::typeOf(std::string_view name) const {
  auto it = types.find(std::string(name));
  if (it != types.end()) return it->second;
  return implicitType(name);
}

bool isIntrinsicName(std::string_view name) { return intrinsics().contains(name); }

std::optional<SemaResult> analyze(Program& program, DiagnosticEngine& diags) {
  return Analyzer(program, diags).run();
}

std::optional<SemaResult> analyze(Program& program, DiagnosticEngine& diags,
                                  SymbolTable symbols, ArrayTable arrays) {
  return Analyzer(program, diags, std::move(symbols), std::move(arrays)).run();
}

SymExpr lowerInt(const Expr& e, const ProcSymbols& sym) {
  switch (e.kind) {
    case Expr::Kind::IntLit:
      return SymExpr::constant(e.intValue);
    case Expr::Kind::RealLit: {
      // Integral real literals (100.0, cutoffs, ...) participate in
      // real-valued comparisons; fractional ones stay outside the fragment.
      double r = e.realValue;
      if (r == static_cast<double>(static_cast<std::int64_t>(r)))
        return SymExpr::constant(static_cast<std::int64_t>(r));
      return SymExpr::poisoned();
    }
    case Expr::Kind::LogicalLit:
      return SymExpr::poisoned();
    case Expr::Kind::VarRef: {
      auto c = sym.consts.find(e.name);
      if (c != sym.consts.end()) return c->second;
      auto id = sym.scalarId(e.name);
      if (!id) return SymExpr::poisoned();
      return SymExpr::variable(*id);
    }
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Intrinsic:
      // Subscripted subscripts and intrinsic calls sit outside the symbolic
      // fragment (§6 notes the same limitation for Panorama).
      return SymExpr::poisoned();
    case Expr::Kind::Unary:
      if (e.unOp == UnOp::Neg) return -lowerInt(*e.args[0], sym);
      return SymExpr::poisoned();
    case Expr::Kind::Binary: {
      SymExpr l = lowerInt(*e.args[0], sym);
      SymExpr r = lowerInt(*e.args[1], sym);
      switch (e.binOp) {
        case BinOp::Add: return l + r;
        case BinOp::Sub: return l - r;
        case BinOp::Mul: return l * r;
        case BinOp::Div: {
          auto rc = r.constantValue();
          if (!rc || *rc == 0) return SymExpr::poisoned();
          if (auto exact = l.divExact(*rc)) return *exact;
          return SymExpr::poisoned();  // inexact integer division
        }
        case BinOp::Pow: {
          auto rc = r.constantValue();
          if (!rc || *rc < 0 || *rc > 4) return SymExpr::poisoned();
          SymExpr acc = SymExpr::constant(1);
          for (std::int64_t k = 0; k < *rc; ++k) acc = acc * l;
          return acc;
        }
        default:
          return SymExpr::poisoned();  // relational/logical is not a value here
      }
    }
  }
  return SymExpr::poisoned();
}

bool isIntegerValued(const Expr& e, const ProcSymbols& sym) {
  switch (e.kind) {
    case Expr::Kind::IntLit:
      return true;
    case Expr::Kind::RealLit:
    case Expr::Kind::LogicalLit:
      return false;
    case Expr::Kind::VarRef:
      if (sym.consts.contains(e.name)) return true;
      return sym.typeOf(e.name) == BaseType::Integer;
    case Expr::Kind::ArrayRef:
      return sym.typeOf(e.name) == BaseType::Integer;
    case Expr::Kind::Intrinsic: {
      static const std::set<std::string, std::less<>> intReturning{"mod", "abs", "iabs",
                                                                   "max", "min", "int",
                                                                   "nint", "max0", "min0"};
      if (!intReturning.contains(e.name)) return false;
      return std::all_of(e.args.begin(), e.args.end(),
                         [&](const ExprPtr& a) { return isIntegerValued(*a, sym); });
    }
    case Expr::Kind::Unary:
      return e.unOp == UnOp::Neg && isIntegerValued(*e.args[0], sym);
    case Expr::Kind::Binary:
      switch (e.binOp) {
        case BinOp::Add:
        case BinOp::Sub:
        case BinOp::Mul:
        case BinOp::Div:
        case BinOp::Pow:
          return isIntegerValued(*e.args[0], sym) && isIntegerValued(*e.args[1], sym);
        default:
          return false;
      }
  }
  return false;
}

Pred lowerCond(const Expr& e, const ProcSymbols& sym) {
  switch (e.kind) {
    case Expr::Kind::LogicalLit:
      return e.logicalValue ? Pred::makeTrue() : Pred::makeFalse();
    case Expr::Kind::VarRef: {
      if (sym.typeOf(e.name) != BaseType::Logical) return Pred::makeUnknown();
      auto id = sym.scalarId(e.name);
      if (!id) return Pred::makeUnknown();
      return Pred::atom(Atom::logicalVar(*id, true));
    }
    case Expr::Kind::Unary:
      if (e.unOp == UnOp::Not) return !lowerCond(*e.args[0], sym);
      return Pred::makeUnknown();
    case Expr::Kind::Binary: {
      switch (e.binOp) {
        case BinOp::And:
          return lowerCond(*e.args[0], sym) && lowerCond(*e.args[1], sym);
        case BinOp::Or:
          return lowerCond(*e.args[0], sym) || lowerCond(*e.args[1], sym);
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
        case BinOp::Eq:
        case BinOp::Ne: {
          SymExpr l = lowerInt(*e.args[0], sym);
          SymExpr r = lowerInt(*e.args[1], sym);
          if (l.isPoisoned() || r.isPoisoned()) return Pred::makeUnknown();
          const bool ints = isIntegerValued(*e.args[0], sym) && isIntegerValued(*e.args[1], sym);
          switch (e.binOp) {
            case BinOp::Lt: return Pred::atom(ints ? Atom::lt(l, r) : Atom::rlt(l, r));
            case BinOp::Le: return Pred::atom(ints ? Atom::le(l, r) : Atom::rle(l, r));
            case BinOp::Gt: return Pred::atom(ints ? Atom::gt(l, r) : Atom::rlt(r, l));
            case BinOp::Ge: return Pred::atom(ints ? Atom::ge(l, r) : Atom::rle(r, l));
            case BinOp::Eq: return Pred::atom(ints ? Atom::eq(l, r) : Atom::req(l, r));
            case BinOp::Ne: return Pred::atom(ints ? Atom::ne(l, r) : Atom::rne(l, r));
            default: return Pred::makeUnknown();
          }
        }
        default:
          return Pred::makeUnknown();
      }
    }
    default:
      return Pred::makeUnknown();
  }
}

}  // namespace panorama
