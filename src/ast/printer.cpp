#include <sstream>

#include "panorama/ast/ast.h"

namespace panorama {

namespace {

const char* binOpText(BinOp op) {
  switch (op) {
    case BinOp::Add: return " + ";
    case BinOp::Sub: return " - ";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "**";
    case BinOp::Lt: return " .lt. ";
    case BinOp::Le: return " .le. ";
    case BinOp::Gt: return " .gt. ";
    case BinOp::Ge: return " .ge. ";
    case BinOp::Eq: return " .eq. ";
    case BinOp::Ne: return " .ne. ";
    case BinOp::And: return " .and. ";
    case BinOp::Or: return " .or. ";
  }
  return "?";
}

void printExpr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::IntLit: os << e.intValue; return;
    case Expr::Kind::RealLit: os << e.realValue; return;
    case Expr::Kind::LogicalLit: os << (e.logicalValue ? ".true." : ".false."); return;
    case Expr::Kind::VarRef: os << e.name; return;
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Intrinsic: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ", ";
        printExpr(os, *e.args[i]);
      }
      os << ')';
      return;
    }
    case Expr::Kind::Unary:
      os << (e.unOp == UnOp::Neg ? "(-" : "(.not. ");
      printExpr(os, *e.args[0]);
      os << ')';
      return;
    case Expr::Kind::Binary:
      os << '(';
      printExpr(os, *e.args[0]);
      os << binOpText(e.binOp);
      printExpr(os, *e.args[1]);
      os << ')';
      return;
  }
}

void printStmt(std::ostream& os, const Stmt& s, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (s.label != 0) os << s.label << ' ';
  switch (s.kind) {
    case Stmt::Kind::Assign:
      os << pad;
      printExpr(os, *s.lhs);
      os << " = ";
      printExpr(os, *s.rhs);
      os << '\n';
      return;
    case Stmt::Kind::If:
      os << pad << "if (";
      printExpr(os, *s.cond);
      os << ") then\n";
      for (const StmtPtr& c : s.thenBody) printStmt(os, *c, indent + 1);
      if (!s.elseBody.empty()) {
        os << pad << "else\n";
        for (const StmtPtr& c : s.elseBody) printStmt(os, *c, indent + 1);
      }
      os << pad << "endif\n";
      return;
    case Stmt::Kind::Do:
      os << pad << "do " << s.doVar << " = ";
      printExpr(os, *s.lo);
      os << ", ";
      printExpr(os, *s.hi);
      if (s.step) {
        os << ", ";
        printExpr(os, *s.step);
      }
      os << '\n';
      for (const StmtPtr& c : s.body) printStmt(os, *c, indent + 1);
      os << pad << "enddo\n";
      return;
    case Stmt::Kind::Goto:
      os << pad << "goto " << s.gotoLabel << '\n';
      return;
    case Stmt::Kind::Continue:
      os << pad << "continue\n";
      return;
    case Stmt::Kind::Call:
      os << pad << "call " << s.callee << '(';
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i) os << ", ";
        printExpr(os, *s.args[i]);
      }
      os << ")\n";
      return;
    case Stmt::Kind::Return:
      os << pad << "return\n";
      return;
    case Stmt::Kind::Stop:
      os << pad << "stop\n";
      return;
  }
}

}  // namespace

std::string toString(const Expr& e) {
  std::ostringstream os;
  printExpr(os, e);
  return os.str();
}

std::string toString(const Stmt& s, int indent) {
  std::ostringstream os;
  printStmt(os, s, indent);
  return os.str();
}

std::string toString(const Procedure& p) {
  std::ostringstream os;
  if (p.isMain) {
    os << "program " << p.name << '\n';
  } else {
    os << "subroutine " << p.name << '(';
    for (std::size_t i = 0; i < p.params.size(); ++i) {
      if (i) os << ", ";
      os << p.params[i];
    }
    os << ")\n";
  }
  for (const StmtPtr& s : p.body) printStmt(os, *s, 1);
  os << "end\n";
  return os.str();
}

std::string toString(const Program& p) {
  std::string out;
  for (const Procedure& proc : p.procedures) out += toString(proc) + "\n";
  return out;
}

}  // namespace panorama
