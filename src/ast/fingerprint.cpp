#include "panorama/ast/fingerprint.h"

namespace panorama {

namespace {

/// FNV-1a accumulator. Every field is framed by a tag byte so that adjacent
/// variable-length pieces (names, child lists) can never alias: "ab"+"c"
/// hashes differently from "a"+"bc".
class Hasher {
 public:
  void byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 0x100000001b3ull;
  }
  void u64(std::uint64_t v) {
    for (int k = 0; k < 8; ++k) byte(static_cast<std::uint8_t>(v >> (8 * k)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
  Fingerprint value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void hashExpr(Hasher& h, const Expr* e) {
  if (!e) {
    h.byte(0);
    return;
  }
  h.byte(1);
  h.byte(static_cast<std::uint8_t>(e->kind));
  switch (e->kind) {
    case Expr::Kind::IntLit:
      h.u64(static_cast<std::uint64_t>(e->intValue));
      break;
    case Expr::Kind::RealLit: {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(e->realValue));
      __builtin_memcpy(&bits, &e->realValue, sizeof(bits));
      h.u64(bits);
      break;
    }
    case Expr::Kind::LogicalLit:
      h.byte(e->logicalValue ? 1 : 0);
      break;
    case Expr::Kind::VarRef:
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Intrinsic:
      h.str(e->name);
      break;
    case Expr::Kind::Binary:
      h.byte(static_cast<std::uint8_t>(e->binOp));
      break;
    case Expr::Kind::Unary:
      h.byte(static_cast<std::uint8_t>(e->unOp));
      break;
  }
  h.u64(e->args.size());
  for (const ExprPtr& a : e->args) hashExpr(h, a.get());
}

void hashStmt(Hasher& h, const Stmt& s) {
  h.byte(static_cast<std::uint8_t>(s.kind));
  // Labels are GOTO targets — control flow, not formatting — so they count.
  h.u64(static_cast<std::uint64_t>(s.label));
  hashExpr(h, s.lhs.get());
  hashExpr(h, s.rhs.get());
  hashExpr(h, s.cond.get());
  h.str(s.doVar);
  hashExpr(h, s.lo.get());
  hashExpr(h, s.hi.get());
  hashExpr(h, s.step.get());
  h.u64(static_cast<std::uint64_t>(s.gotoLabel));
  h.str(s.callee);
  h.u64(s.args.size());
  for (const ExprPtr& a : s.args) hashExpr(h, a.get());
  h.u64(s.thenBody.size());
  for (const StmtPtr& c : s.thenBody) hashStmt(h, *c);
  h.u64(s.elseBody.size());
  for (const StmtPtr& c : s.elseBody) hashStmt(h, *c);
  h.u64(s.body.size());
  for (const StmtPtr& c : s.body) hashStmt(h, *c);
}

}  // namespace

Fingerprint fingerprintProcedure(const Procedure& proc) {
  Hasher h;
  h.str(proc.name);
  h.byte(proc.isMain ? 1 : 0);
  h.u64(proc.params.size());
  for (const std::string& p : proc.params) h.str(p);
  h.u64(proc.decls.size());
  for (const VarDecl& d : proc.decls) {
    h.str(d.name);
    h.byte(static_cast<std::uint8_t>(d.type));
    h.u64(d.dims.size());
    for (const VarDecl::DimBound& b : d.dims) {
      hashExpr(h, b.lo.get());
      hashExpr(h, b.up.get());
    }
  }
  h.u64(proc.commons.size());
  for (const CommonBlock& blk : proc.commons) {
    h.str(blk.name);
    h.u64(blk.vars.size());
    for (const std::string& v : blk.vars) h.str(v);
  }
  h.u64(proc.paramConsts.size());
  for (const ParamConst& pc : proc.paramConsts) {
    h.str(pc.name);
    hashExpr(h, pc.value.get());
  }
  h.u64(proc.body.size());
  for (const StmtPtr& s : proc.body) hashStmt(h, *s);
  return h.value();
}

}  // namespace panorama
