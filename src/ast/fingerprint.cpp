#include "panorama/ast/fingerprint.h"

#include <algorithm>
#include <set>

namespace panorama {

namespace {

/// FNV-1a accumulator. Every field is framed by a tag byte so that adjacent
/// variable-length pieces (names, child lists) can never alias: "ab"+"c"
/// hashes differently from "a"+"bc".
class Hasher {
 public:
  void byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 0x100000001b3ull;
  }
  void u64(std::uint64_t v) {
    for (int k = 0; k < 8; ++k) byte(static_cast<std::uint8_t>(v >> (8 * k)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
  Fingerprint value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void hashExpr(Hasher& h, const Expr* e) {
  if (!e) {
    h.byte(0);
    return;
  }
  h.byte(1);
  h.byte(static_cast<std::uint8_t>(e->kind));
  switch (e->kind) {
    case Expr::Kind::IntLit:
      h.u64(static_cast<std::uint64_t>(e->intValue));
      break;
    case Expr::Kind::RealLit: {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(e->realValue));
      __builtin_memcpy(&bits, &e->realValue, sizeof(bits));
      h.u64(bits);
      break;
    }
    case Expr::Kind::LogicalLit:
      h.byte(e->logicalValue ? 1 : 0);
      break;
    case Expr::Kind::VarRef:
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Intrinsic:
      h.str(e->name);
      break;
    case Expr::Kind::Binary:
      h.byte(static_cast<std::uint8_t>(e->binOp));
      break;
    case Expr::Kind::Unary:
      h.byte(static_cast<std::uint8_t>(e->unOp));
      break;
  }
  h.u64(e->args.size());
  for (const ExprPtr& a : e->args) hashExpr(h, a.get());
}

void hashStmt(Hasher& h, const Stmt& s) {
  h.byte(static_cast<std::uint8_t>(s.kind));
  // Labels are GOTO targets — control flow, not formatting — so they count.
  h.u64(static_cast<std::uint64_t>(s.label));
  hashExpr(h, s.lhs.get());
  hashExpr(h, s.rhs.get());
  hashExpr(h, s.cond.get());
  h.str(s.doVar);
  hashExpr(h, s.lo.get());
  hashExpr(h, s.hi.get());
  hashExpr(h, s.step.get());
  h.u64(static_cast<std::uint64_t>(s.gotoLabel));
  h.str(s.callee);
  h.u64(s.args.size());
  for (const ExprPtr& a : s.args) hashExpr(h, a.get());
  h.u64(s.thenBody.size());
  for (const StmtPtr& c : s.thenBody) hashStmt(h, *c);
  h.u64(s.elseBody.size());
  for (const StmtPtr& c : s.elseBody) hashStmt(h, *c);
  h.u64(s.body.size());
  for (const StmtPtr& c : s.body) hashStmt(h, *c);
}

void hashFrame(Hasher& h, const Procedure& proc) {
  h.str(proc.name);
  h.byte(proc.isMain ? 1 : 0);
  h.u64(proc.params.size());
  for (const std::string& p : proc.params) h.str(p);
  h.u64(proc.decls.size());
  for (const VarDecl& d : proc.decls) {
    h.str(d.name);
    h.byte(static_cast<std::uint8_t>(d.type));
    h.u64(d.dims.size());
    for (const VarDecl::DimBound& b : d.dims) {
      hashExpr(h, b.lo.get());
      hashExpr(h, b.up.get());
    }
  }
  h.u64(proc.commons.size());
  for (const CommonBlock& blk : proc.commons) {
    h.str(blk.name);
    h.u64(blk.vars.size());
    for (const std::string& v : blk.vars) h.str(v);
  }
  h.u64(proc.paramConsts.size());
  for (const ParamConst& pc : proc.paramConsts) {
    h.str(pc.name);
    hashExpr(h, pc.value.get());
  }
}

void scanStmt(const Stmt& s, std::set<std::string>& doVars, std::set<std::string>& callees,
              bool& hasLoop) {
  if (s.kind == Stmt::Kind::Do) {
    doVars.insert(s.doVar);
    hasLoop = true;
  }
  if (s.kind == Stmt::Kind::Call) callees.insert(s.callee);
  for (const StmtPtr& c : s.thenBody) scanStmt(*c, doVars, callees, hasLoop);
  for (const StmtPtr& c : s.elseBody) scanStmt(*c, doVars, callees, hasLoop);
  for (const StmtPtr& c : s.body) scanStmt(*c, doVars, callees, hasLoop);
}

bool remapExpr(Expr* to, const Expr* from) {
  if (!to || !from) return to == from;
  // `to` is the previous epoch's post-sema AST (ArrayRef nodes may have been
  // reclassified to Intrinsic in place); `from` is freshly parsed. The two
  // kinds are the same syntactic shape, so the lockstep walk equates them.
  auto canon = [](Expr::Kind k) {
    return k == Expr::Kind::Intrinsic ? Expr::Kind::ArrayRef : k;
  };
  if (canon(to->kind) != canon(from->kind) || to->args.size() != from->args.size()) return false;
  to->loc = from->loc;
  for (std::size_t k = 0; k < to->args.size(); ++k)
    if (!remapExpr(to->args[k].get(), from->args[k].get())) return false;
  return true;
}

bool remapStmt(Stmt& to, const Stmt& from) {
  if (to.kind != from.kind || to.thenBody.size() != from.thenBody.size() ||
      to.elseBody.size() != from.elseBody.size() || to.body.size() != from.body.size() ||
      to.args.size() != from.args.size())
    return false;
  to.loc = from.loc;
  bool ok = remapExpr(to.lhs.get(), from.lhs.get()) && remapExpr(to.rhs.get(), from.rhs.get()) &&
            remapExpr(to.cond.get(), from.cond.get()) && remapExpr(to.lo.get(), from.lo.get()) &&
            remapExpr(to.hi.get(), from.hi.get()) && remapExpr(to.step.get(), from.step.get());
  for (std::size_t k = 0; ok && k < to.args.size(); ++k)
    ok = remapExpr(to.args[k].get(), from.args[k].get());
  for (std::size_t k = 0; ok && k < to.thenBody.size(); ++k)
    ok = remapStmt(*to.thenBody[k], *from.thenBody[k]);
  for (std::size_t k = 0; ok && k < to.elseBody.size(); ++k)
    ok = remapStmt(*to.elseBody[k], *from.elseBody[k]);
  for (std::size_t k = 0; ok && k < to.body.size(); ++k)
    ok = remapStmt(*to.body[k], *from.body[k]);
  return ok;
}

}  // namespace

Fingerprint fingerprintProcedure(const Procedure& proc) {
  Hasher h;
  hashFrame(h, proc);
  h.u64(proc.body.size());
  for (const StmtPtr& s : proc.body) hashStmt(h, *s);
  return h.value();
}

ProcFingerprintDetail fingerprintProcedureDetail(const Procedure& proc) {
  ProcFingerprintDetail out;
  out.whole = fingerprintProcedure(proc);

  // Per-item structural hashes plus the scan products (DO index names for
  // the frame, callee names for the epoch keys).
  const std::size_t n = proc.body.size();
  std::vector<Fingerprint> itemHash(n);
  std::vector<std::set<std::string>> itemCallees(n);
  std::set<std::string> doVars;
  out.items.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    Hasher h;
    hashStmt(h, *proc.body[k]);
    itemHash[k] = h.value();
    out.items[k].hash = itemHash[k];
    std::set<std::string> itemDoVars;
    scanStmt(*proc.body[k], itemDoVars, itemCallees[k], out.items[k].hasLoop);
    doVars.insert(itemDoVars.begin(), itemDoVars.end());
  }

  // The frame covers everything a lowering can read besides statements: the
  // declaration context plus the procedure's DO index set (the T1-off
  // ablation treats index variables specially, so the set is verdict input).
  {
    Hasher h;
    hashFrame(h, proc);
    h.u64(doVars.size());
    for (const std::string& v : doVars) h.str(v);
    out.frame = h.value();
  }

  // Suffix hashes and callee unions, built back-to-front: item k's verdicts
  // read its own subtree plus everything after it (ueAfter), so its callee
  // set is the suffix union including itself.
  Fingerprint suffix;
  {
    Hasher h;
    h.u64(0);
    suffix = h.value();
  }
  std::set<std::string> suffixCallees;
  for (std::size_t k = n; k-- > 0;) {
    out.items[k].suffixHash = suffix;
    suffixCallees.insert(itemCallees[k].begin(), itemCallees[k].end());
    out.items[k].callees.assign(suffixCallees.begin(), suffixCallees.end());
    Hasher h;
    h.u64(itemHash[k]);
    h.u64(suffix);
    suffix = h.value();
  }
  for (std::size_t k = 1; k < n; ++k) out.items[k].precedingHash = itemHash[k - 1];
  return out;
}

bool remapSourceLocs(Procedure& to, const Procedure& from) {
  if (to.body.size() != from.body.size() || to.decls.size() != from.decls.size()) return false;
  to.loc = from.loc;
  for (std::size_t k = 0; k < to.decls.size(); ++k) to.decls[k].loc = from.decls[k].loc;
  for (std::size_t k = 0; k < to.body.size(); ++k)
    if (!remapStmt(*to.body[k], *from.body[k])) return false;
  return true;
}

}  // namespace panorama
