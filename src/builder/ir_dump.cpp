// dumpIr(): human-readable rendering of the frontend-neutral IR — the region
// tree (loops/guards), the basic blocks with their array reads/writes and
// calls, and the implied intra-region edge chains. Consumed by
// `panorama_driver --dump-ir=FILE`; deterministic for golden tests.
#include <string>
#include <vector>

#include "panorama/ast/sema.h"
#include "panorama/builder/builder.h"

namespace panorama::builder {
namespace {

struct Dumper {
  std::string out;
  int blockId = 0;

  void line(int depth, const std::string& text) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += text;
    out += '\n';
  }

  static void appendList(std::string& dst, const std::vector<std::string>& items) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) dst += ", ";
      dst += items[i];
    }
  }

  /// Array accesses inside one expression. `reads` collects subscripted
  /// references that are not intrinsic calls; intrinsic arguments are
  /// scanned recursively.
  void collectReads(const Expr& e, std::vector<std::string>& reads) {
    if (e.kind == Expr::Kind::ArrayRef && !isIntrinsicName(e.name)) reads.push_back(toString(e));
    // Subscripts and intrinsic arguments may themselves read arrays (a(b(i))).
    for (const ExprPtr& a : e.args) collectReads(*a, reads);
  }

  static std::string loc(const Stmt& s) {
    if (s.loc.line == 0) return {};
    return " @" + std::to_string(s.loc.line);
  }

  void dumpBlock(const std::vector<StmtPtr>& body, std::size_t begin, std::size_t end, int depth,
                 std::string& name) {
    name = "bb" + std::to_string(blockId++);
    std::vector<std::string> reads, writes, calls, flow;
    for (std::size_t i = begin; i < end; ++i) {
      const Stmt& s = *body[i];
      switch (s.kind) {
        case Stmt::Kind::Assign:
          if (s.lhs->kind == Expr::Kind::VarRef) {
            writes.push_back(s.lhs->name);
          } else {
            writes.push_back(toString(*s.lhs));
            for (const ExprPtr& a : s.lhs->args) collectReads(*a, reads);
          }
          collectReads(*s.rhs, reads);
          break;
        case Stmt::Kind::Call: {
          std::string c = s.callee + "(";
          std::vector<std::string> args;
          for (const ExprPtr& a : s.args) {
            args.push_back(toString(*a));
            collectReads(*a, reads);
          }
          appendList(c, args);
          c += ")";
          calls.push_back(std::move(c));
          break;
        }
        case Stmt::Kind::Goto:
          flow.push_back("goto " + std::to_string(s.gotoLabel));
          break;
        case Stmt::Kind::Continue:
          if (s.label != 0) flow.push_back("label " + std::to_string(s.label));
          break;
        case Stmt::Kind::Return:
          flow.push_back("return");
          break;
        case Stmt::Kind::Stop:
          flow.push_back("stop");
          break;
        default:
          break;
      }
    }
    std::string head = name + loc(*body[begin]) + " (" + std::to_string(end - begin) +
                       (end - begin == 1 ? " stmt)" : " stmts)");
    line(depth, head);
    auto emit = [&](const char* tag, std::vector<std::string>& items) {
      if (items.empty()) return;
      std::string text = std::string(tag) + ": ";
      appendList(text, items);
      line(depth + 1, text);
    };
    emit("writes", writes);
    emit("reads", reads);
    emit("calls", calls);
    emit("flow", flow);
  }

  void dumpBody(const std::vector<StmtPtr>& body, int depth) {
    std::vector<std::string> chain;
    std::size_t i = 0;
    while (i < body.size()) {
      const Stmt& s = *body[i];
      if (s.kind == Stmt::Kind::Do) {
        std::string head = "loop " + s.doVar + " = " + toString(*s.lo) + ", " + toString(*s.hi);
        if (s.step) head += ", " + toString(*s.step);
        if (s.label != 0) head += " [label " + std::to_string(s.label) + "]";
        head += loc(s) + " {";
        line(depth, head);
        dumpBody(s.body, depth + 1);
        line(depth, "}");
        chain.push_back("loop." + s.doVar);
        ++i;
      } else if (s.kind == Stmt::Kind::If) {
        line(depth, "guard (" + toString(*s.cond) + ")" + loc(s) + " {");
        dumpBody(s.thenBody, depth + 1);
        if (!s.elseBody.empty()) {
          line(depth, "} else {");
          dumpBody(s.elseBody, depth + 1);
        }
        line(depth, "}");
        chain.push_back("guard");
        ++i;
      } else {
        std::size_t j = i;
        while (j < body.size() && body[j]->kind != Stmt::Kind::Do &&
               body[j]->kind != Stmt::Kind::If)
          ++j;
        std::string name;
        dumpBlock(body, i, j, depth, name);
        chain.push_back(std::move(name));
        i = j;
      }
    }
    if (chain.size() > 1) {
      std::string text = "edges: ";
      for (std::size_t k = 0; k < chain.size(); ++k) {
        if (k != 0) text += " >> ";
        text += chain[k];
      }
      line(depth, text);
    }
  }

  void dumpDecl(const VarDecl& d, int depth) {
    std::string text;
    switch (d.type) {
      case BaseType::Integer: text = "integer "; break;
      case BaseType::Real: text = "real "; break;
      case BaseType::Logical: text = "logical "; break;
    }
    text += d.name;
    if (d.isArray()) {
      text += "(";
      std::vector<std::string> bounds;
      for (const VarDecl::DimBound& b : d.dims) {
        std::string dim;
        if (b.lo) dim += toString(*b.lo) + ":";
        dim += b.up ? toString(*b.up) : "*";
        bounds.push_back(std::move(dim));
      }
      appendList(text, bounds);
      text += ")";
    }
    line(depth, text);
  }

  void dumpProcedure(const Procedure& p) {
    std::string head = (p.isMain ? "program " : "procedure ") + p.name;
    if (!p.params.empty()) {
      head += "(";
      appendList(head, p.params);
      head += ")";
    }
    if (p.loc.line != 0) head += " @" + std::to_string(p.loc.line);
    head += " {";
    line(0, head);
    for (const VarDecl& d : p.decls) dumpDecl(d, 1);
    for (const ParamConst& pc : p.paramConsts)
      line(1, "const " + pc.name + " = " + toString(*pc.value));
    for (const CommonBlock& blk : p.commons) {
      std::string text = "common /" + blk.name + "/ ";
      appendList(text, blk.vars);
      line(1, text);
    }
    dumpBody(p.body, 1);
    line(0, "}");
  }
};

}  // namespace

std::string dumpIr(const Program& program) {
  Dumper d;
  for (std::size_t i = 0; i < program.procedures.size(); ++i) {
    if (i != 0) d.out += '\n';
    d.blockId = 0;
    d.dumpProcedure(program.procedures[i]);
  }
  return d.out;
}

}  // namespace panorama::builder
