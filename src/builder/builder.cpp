// ProgramBuilder: validation + assembly of the frontend-neutral IR into the
// shared pre-sema AST. All misuse is reported as diagnostics at build();
// nothing here aborts (the builder is the ingestion surface for untrusted
// programmatic clients — a malformed submission must fail like a syntax
// error, not like a bug).
#include "panorama/builder/builder.h"

#include <algorithm>
#include <map>
#include <set>

#include "panorama/ast/sema.h"

namespace panorama::builder {

// --------------------------------------------------------------- Val DSL

Val sym(std::string name) { return Val::wrap(Expr::var(std::move(name))); }
Val cst(std::int64_t v) { return Val::wrap(Expr::intLit(v)); }
Val rcst(double v) { return Val::wrap(Expr::realLit(v)); }
Val lcst(bool v) { return Val::wrap(Expr::logicalLit(v)); }

Val elem(std::string array, std::vector<Val> subs) {
  std::vector<ExprPtr> args;
  args.reserve(subs.size());
  for (const Val& s : subs) args.push_back(s.take());
  return Val::wrap(Expr::arrayRef(std::move(array), std::move(args)));
}

Val fn(std::string name, std::vector<Val> args) {
  // Emitted as an ArrayRef, exactly like the parser: sema reclassifies
  // recognized intrinsic names in place (keeping fingerprints comparable
  // across the two frontends).
  return elem(std::move(name), std::move(args));
}

namespace {
Val bin(BinOp op, Val l, Val r) { return Val::wrap(Expr::binary(op, l.take(), r.take())); }
}  // namespace

Val operator+(Val l, Val r) { return bin(BinOp::Add, std::move(l), std::move(r)); }
Val operator-(Val l, Val r) { return bin(BinOp::Sub, std::move(l), std::move(r)); }
Val operator*(Val l, Val r) { return bin(BinOp::Mul, std::move(l), std::move(r)); }
Val operator/(Val l, Val r) { return bin(BinOp::Div, std::move(l), std::move(r)); }
Val pow(Val l, Val r) { return bin(BinOp::Pow, std::move(l), std::move(r)); }
Val operator-(Val x) { return Val::wrap(Expr::unary(UnOp::Neg, x.take())); }
Val operator==(Val l, Val r) { return bin(BinOp::Eq, std::move(l), std::move(r)); }
Val operator!=(Val l, Val r) { return bin(BinOp::Ne, std::move(l), std::move(r)); }
Val operator<(Val l, Val r) { return bin(BinOp::Lt, std::move(l), std::move(r)); }
Val operator<=(Val l, Val r) { return bin(BinOp::Le, std::move(l), std::move(r)); }
Val operator>(Val l, Val r) { return bin(BinOp::Gt, std::move(l), std::move(r)); }
Val operator>=(Val l, Val r) { return bin(BinOp::Ge, std::move(l), std::move(r)); }
Val operator&&(Val l, Val r) { return bin(BinOp::And, std::move(l), std::move(r)); }
Val operator||(Val l, Val r) { return bin(BinOp::Or, std::move(l), std::move(r)); }
Val operator!(Val x) { return Val::wrap(Expr::unary(UnOp::Not, x.take())); }

// --------------------------------------------------------------- NodeRef

NodeRef& NodeRef::assign(std::string scalar, Val value) {
  if (valid()) {
    StmtPtr s = pb_->makeStmt(Stmt::Kind::Assign);
    s->lhs = Expr::var(std::move(scalar), s->loc);
    s->rhs = value.take();
    pb_->appendStmt(id_, std::move(s));
  }
  return *this;
}

NodeRef& NodeRef::store(std::string array, std::vector<Val> subs, Val value) {
  if (valid()) {
    StmtPtr s = pb_->makeStmt(Stmt::Kind::Assign);
    std::vector<ExprPtr> args;
    args.reserve(subs.size());
    for (const Val& v : subs) args.push_back(v.take());
    s->lhs = Expr::arrayRef(std::move(array), std::move(args), s->loc);
    s->rhs = value.take();
    pb_->appendStmt(id_, std::move(s));
  }
  return *this;
}

NodeRef& NodeRef::call(std::string callee, std::vector<Val> args) {
  if (valid()) {
    StmtPtr s = pb_->makeStmt(Stmt::Kind::Call);
    s->callee = std::move(callee);
    for (const Val& a : args) s->args.push_back(a.take());
    pb_->appendStmt(id_, std::move(s));
  }
  return *this;
}

NodeRef& NodeRef::ret() {
  if (valid()) pb_->appendStmt(id_, pb_->makeStmt(Stmt::Kind::Return));
  return *this;
}

NodeRef& NodeRef::stop() {
  if (valid()) pb_->appendStmt(id_, pb_->makeStmt(Stmt::Kind::Stop));
  return *this;
}

NodeRef& NodeRef::cont(int label) {
  if (valid()) {
    StmtPtr s = pb_->makeStmt(Stmt::Kind::Continue);
    if (label != 0) s->label = label;
    if (label != 0) pb_->stmtLabels_.push_back(label);
    pb_->appendStmt(id_, std::move(s));
  }
  return *this;
}

NodeRef& NodeRef::jump(int label) {
  if (valid()) {
    StmtPtr s = pb_->makeStmt(Stmt::Kind::Goto);
    s->gotoLabel = label;
    pb_->gotoTargets_.push_back({label, s->loc});
    pb_->appendStmt(id_, std::move(s));
  }
  return *this;
}

NodeRef NodeRef::operator>>(NodeRef next) const {
  if (valid() && next.valid()) {
    if (pb_ != next.pb_) {
      pb_->diag("edge from '" + std::string(name()) + "' to '" + std::string(next.name()) +
                "' links nodes of different procedures");
    } else {
      pb_->addEdge(id_, next.id_);
    }
  }
  return next;
}

std::string_view NodeRef::name() const {
  if (!valid()) return "<invalid>";
  return pb_->node(id_).name;
}

// ----------------------------------------------------- ProcedureBuilder

ProcedureBuilder& ProcedureBuilder::param(std::string name) {
  if (std::find(params_.begin(), params_.end(), name) != params_.end())
    diag("duplicate formal parameter '" + name + "'");
  else
    params_.push_back(std::move(name));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::scalar(std::string name, BaseType type) {
  VarDecl d;
  d.name = std::move(name);
  d.type = type;
  d.loc = loc_;
  decls_.push_back(std::move(d));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::array(std::string name, std::vector<Val> upperBounds,
                                          BaseType type) {
  VarDecl d;
  d.name = std::move(name);
  d.type = type;
  d.loc = loc_;
  if (upperBounds.empty()) diag("array '" + d.name + "' declared with no dimensions");
  for (const Val& up : upperBounds) {
    VarDecl::DimBound b;
    b.up = up.take();
    d.dims.push_back(std::move(b));
  }
  decls_.push_back(std::move(d));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::declare(VarDecl decl) {
  if (decl.loc == SourceLoc{}) decl.loc = loc_;
  decls_.push_back(std::move(decl));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::constant(std::string name, Val value) {
  ParamConst pc;
  pc.name = std::move(name);
  pc.value = value.take();
  consts_.push_back(std::move(pc));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::common(std::string block, std::vector<std::string> vars) {
  CommonBlock blk;
  blk.name = std::move(block);
  blk.vars = std::move(vars);
  commons_.push_back(std::move(blk));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::at(int line, int column) {
  loc_ = SourceLoc{static_cast<std::uint32_t>(line < 0 ? 0 : line),
                   static_cast<std::uint32_t>(column < 0 ? 0 : column)};
  if (!procLocSet_) {
    procLoc_ = loc_;
    procLocSet_ = true;
  }
  return *this;
}

ProcedureBuilder& ProcedureBuilder::labelNext(int label) {
  nextLabel_ = label;
  return *this;
}

int ProcedureBuilder::newNode(Node::Kind kind, std::string name) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.parent = currentRegion();
  n.loc = loc_;
  if (n.parent >= 0 && node(n.parent).kind == Node::Kind::Guard)
    n.inElse = node(n.parent).elseStarted;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

NodeRef ProcedureBuilder::block(std::string name) {
  if (name.empty()) name = "bb" + std::to_string(autoBlockId_++);
  int id = newNode(Node::Kind::Block, std::move(name));
  currentBlock_ = id;
  return NodeRef(this, id);
}

int ProcedureBuilder::emissionBlock() {
  // A fresh block is needed when none is live in the current region — the
  // region just opened, or a sub-region was closed since the last emission
  // (statements after endLoop() must sequence after the loop).
  if (currentBlock_ >= 0 && node(currentBlock_).parent == currentRegion() &&
      node(currentBlock_).kind == Node::Kind::Block) {
    const Node& b = node(currentBlock_);
    const bool branchMatches =
        b.parent < 0 || node(b.parent).kind != Node::Kind::Guard ||
        b.inElse == node(b.parent).elseStarted;
    if (branchMatches && currentBlock_ == static_cast<int>(nodes_.size()) - 1) return currentBlock_;
    // The current block is stale only if something (a region, another
    // block) was created after it; otherwise keep appending.
    if (branchMatches) {
      bool somethingAfter = false;
      for (std::size_t k = static_cast<std::size_t>(currentBlock_) + 1; k < nodes_.size(); ++k)
        if (nodes_[k].parent == node(currentBlock_).parent) somethingAfter = true;
      if (!somethingAfter) return currentBlock_;
    }
  }
  block();
  return currentBlock_;
}

StmtPtr ProcedureBuilder::makeStmt(Stmt::Kind kind) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc_;
  if (nextLabel_ != 0) {
    s->label = nextLabel_;
    stmtLabels_.push_back(nextLabel_);
    nextLabel_ = 0;
  }
  return s;
}

void ProcedureBuilder::appendStmt(int blockId, StmtPtr stmt) {
  Node& n = node(blockId);
  if (n.kind != Node::Kind::Block) {
    diag("cannot emit a statement into region node '" + n.name + "'; create a block inside it");
    return;
  }
  n.stmts.push_back(std::move(stmt));
}

NodeRef ProcedureBuilder::beginLoop(std::string var, Val lo, Val hi) {
  int id = newNode(Node::Kind::Loop, "loop." + var + "#" + std::to_string(nodes_.size()));
  Node& n = node(id);
  n.doVar = var;
  n.lo = lo.take();
  n.hi = hi.take();
  n.closed = false;
  if (nextLabel_ != 0) {
    n.label = nextLabel_;
    stmtLabels_.push_back(nextLabel_);
    nextLabel_ = 0;
  }
  loopVars_.push_back(std::move(var));
  regionStack_.push_back(id);
  currentBlock_ = -1;
  return NodeRef(this, id);
}

NodeRef ProcedureBuilder::beginLoop(std::string var, Val lo, Val hi, Val step) {
  NodeRef r = beginLoop(std::move(var), std::move(lo), std::move(hi));
  if (r.valid()) node(r.id_).step = step.take();
  return r;
}

ProcedureBuilder& ProcedureBuilder::endLoop() {
  if (regionStack_.empty() || node(regionStack_.back()).kind != Node::Kind::Loop) {
    diag("endLoop() without an open loop region");
    return *this;
  }
  node(regionStack_.back()).closed = true;
  regionStack_.pop_back();
  currentBlock_ = -1;
  return *this;
}

NodeRef ProcedureBuilder::beginGuard(Val cond) {
  int id = newNode(Node::Kind::Guard, "guard#" + std::to_string(nodes_.size()));
  Node& n = node(id);
  n.cond = cond.take();
  n.closed = false;
  if (nextLabel_ != 0) {
    n.label = nextLabel_;
    stmtLabels_.push_back(nextLabel_);
    nextLabel_ = 0;
  }
  regionStack_.push_back(id);
  currentBlock_ = -1;
  return NodeRef(this, id);
}

ProcedureBuilder& ProcedureBuilder::beginElse() {
  if (regionStack_.empty() || node(regionStack_.back()).kind != Node::Kind::Guard) {
    diag("beginElse() without an open guard region");
    return *this;
  }
  Node& g = node(regionStack_.back());
  if (g.elseStarted) diag("guard '" + g.name + "' already has an else branch");
  g.elseStarted = true;
  currentBlock_ = -1;
  return *this;
}

ProcedureBuilder& ProcedureBuilder::endGuard() {
  if (regionStack_.empty() || node(regionStack_.back()).kind != Node::Kind::Guard) {
    diag("endGuard() without an open guard region");
    return *this;
  }
  node(regionStack_.back()).closed = true;
  regionStack_.pop_back();
  currentBlock_ = -1;
  return *this;
}

ProcedureBuilder& ProcedureBuilder::assign(std::string scalar, Val value) {
  NodeRef(this, emissionBlock()).assign(std::move(scalar), std::move(value));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::store(std::string array, std::vector<Val> subs, Val value) {
  NodeRef(this, emissionBlock()).store(std::move(array), std::move(subs), std::move(value));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::call(std::string callee, std::vector<Val> args) {
  NodeRef(this, emissionBlock()).call(std::move(callee), std::move(args));
  return *this;
}

ProcedureBuilder& ProcedureBuilder::ret() {
  NodeRef(this, emissionBlock()).ret();
  return *this;
}

ProcedureBuilder& ProcedureBuilder::stop() {
  NodeRef(this, emissionBlock()).stop();
  return *this;
}

ProcedureBuilder& ProcedureBuilder::cont(int label) {
  NodeRef(this, emissionBlock()).cont(label);
  return *this;
}

ProcedureBuilder& ProcedureBuilder::jump(int label) {
  NodeRef(this, emissionBlock()).jump(label);
  return *this;
}

void ProcedureBuilder::addEdge(int from, int to) {
  Node& a = node(from);
  Node& b = node(to);
  if (a.parent != b.parent || a.inElse != b.inElse) {
    diag("edge '" + a.name + "' >> '" + b.name + "' crosses region boundaries");
    return;
  }
  a.succs.push_back(to);
  b.preds.push_back(from);
}

// ----------------------------------------------------------- validation

bool ProcedureBuilder::isDeclared(const std::string& name) const {
  for (const VarDecl& d : decls_)
    if (d.name == name) return true;
  for (const ParamConst& pc : consts_)
    if (pc.name == name) return true;
  if (std::find(params_.begin(), params_.end(), name) != params_.end()) return true;
  if (std::find(loopVars_.begin(), loopVars_.end(), name) != loopVars_.end()) return true;
  if (std::find(definedScalars_.begin(), definedScalars_.end(), name) != definedScalars_.end())
    return true;
  return false;
}

void ProcedureBuilder::collectDefinedScalars(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Assign:
      if (s.lhs->kind == Expr::Kind::VarRef) definedScalars_.push_back(s.lhs->name);
      break;
    case Stmt::Kind::Call:
      // A scalar passed by reference may be defined by the callee; Fortran
      // implicit typing makes it a known symbol either way.
      for (const ExprPtr& a : s.args)
        if (a->kind == Expr::Kind::VarRef) definedScalars_.push_back(a->name);
      break;
    case Stmt::Kind::If:
      for (const StmtPtr& c : s.thenBody) collectDefinedScalars(*c);
      for (const StmtPtr& c : s.elseBody) collectDefinedScalars(*c);
      break;
    case Stmt::Kind::Do:
      for (const StmtPtr& c : s.body) collectDefinedScalars(*c);
      break;
    default:
      break;
  }
}

void ProcedureBuilder::validateExpr(const Expr& e, bool analysisPosition,
                                    DiagnosticEngine& diags) {
  switch (e.kind) {
    case Expr::Kind::VarRef:
      // Analysis-bearing positions (subscripts, loop bounds) demand declared
      // symbols — an undeclared name there silently becomes an opaque value
      // and poisons the region algebra, which is exactly the mistake a
      // programmatic client wants surfaced. Elsewhere Fortran implicit
      // typing applies, matching the parser frontend.
      if (analysisPosition && !isDeclared(e.name))
        diags.error(e.loc, "procedure '" + name_ + "': subscript or loop bound references " +
                               "undeclared symbol '" + e.name + "'");
      return;
    case Expr::Kind::ArrayRef:
    case Expr::Kind::Intrinsic: {
      const VarDecl* d = nullptr;
      for (const VarDecl& vd : decls_)
        if (vd.name == e.name) d = &vd;
      if (d && d->isArray()) {
        if (d->dims.size() != e.args.size())
          diags.error(e.loc, "procedure '" + name_ + "': array '" + e.name + "' expects " +
                                 std::to_string(d->dims.size()) + " subscript(s), got " +
                                 std::to_string(e.args.size()));
        for (const ExprPtr& a : e.args) validateExpr(*a, /*analysisPosition=*/true, diags);
        return;
      }
      if (e.kind == Expr::Kind::Intrinsic || isIntrinsicName(e.name)) {
        for (const ExprPtr& a : e.args) validateExpr(*a, analysisPosition, diags);
        return;
      }
      diags.error(e.loc, "procedure '" + name_ + "': '" + e.name +
                             "' is subscripted but is neither a declared array nor an intrinsic");
      return;
    }
    default:
      for (const ExprPtr& a : e.args) validateExpr(*a, analysisPosition, diags);
      return;
  }
}

void ProcedureBuilder::validateStmt(const Stmt& s, DiagnosticEngine& diags) {
  auto validateBody = [&](const std::vector<StmtPtr>& body) {
    for (const StmtPtr& c : body) validateStmt(*c, diags);
  };
  switch (s.kind) {
    case Stmt::Kind::Assign: {
      const Expr& lhs = *s.lhs;
      if (lhs.kind == Expr::Kind::VarRef) {
        for (const VarDecl& d : decls_)
          if (d.name == lhs.name && d.isArray())
            diags.error(lhs.loc, "procedure '" + name_ + "': assignment to array '" + lhs.name +
                                     "' without subscripts; use store()");
        for (const ParamConst& pc : consts_)
          if (pc.name == lhs.name)
            diags.error(lhs.loc,
                        "procedure '" + name_ + "': assignment to PARAMETER '" + lhs.name + "'");
      } else {
        validateExpr(lhs, /*analysisPosition=*/false, diags);
      }
      validateExpr(*s.rhs, /*analysisPosition=*/false, diags);
      break;
    }
    case Stmt::Kind::If:
      validateExpr(*s.cond, /*analysisPosition=*/false, diags);
      validateBody(s.thenBody);
      validateBody(s.elseBody);
      break;
    case Stmt::Kind::Do: {
      for (const VarDecl& d : decls_)
        if (d.name == s.doVar && d.isArray())
          diags.error(s.loc,
                      "procedure '" + name_ + "': loop variable '" + s.doVar + "' is an array");
      if (s.lo) validateExpr(*s.lo, /*analysisPosition=*/true, diags);
      if (s.hi) validateExpr(*s.hi, /*analysisPosition=*/true, diags);
      if (s.step) validateExpr(*s.step, /*analysisPosition=*/true, diags);
      validateBody(s.body);
      break;
    }
    case Stmt::Kind::Call:
      for (const ExprPtr& a : s.args) validateExpr(*a, /*analysisPosition=*/false, diags);
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------- assembly

bool ProcedureBuilder::orderRegion(const std::vector<int>& members, std::vector<int>& ordered,
                                   DiagnosticEngine& diags) {
  bool anyEdge = false;
  for (int id : members)
    if (!node(id).succs.empty()) anyEdge = true;
  if (!anyEdge) {
    ordered = members;  // creation order
    return true;
  }

  bool ok = true;
  for (int id : members) {
    const Node& n = node(id);
    if (n.succs.size() > 1) {
      diags.error(n.loc, "procedure '" + name_ + "': node '" + n.name +
                             "' has multiple successors; branch with a guard region instead");
      ok = false;
    }
    if (n.preds.size() > 1) {
      diags.error(n.loc, "procedure '" + name_ + "': node '" + n.name +
                             "' has multiple predecessors in its region's edge chain");
      ok = false;
    }
    if (n.succs.empty() && n.preds.empty()) {
      diags.error(n.loc, "procedure '" + name_ + "': node '" + n.name +
                             "' is not linked into its region's edge chain");
      ok = false;
    }
  }
  if (!ok) return false;

  std::vector<int> heads;
  for (int id : members)
    if (node(id).preds.empty()) heads.push_back(id);
  if (heads.empty()) {
    diags.error(node(members.front()).loc,
                "procedure '" + name_ + "': cyclic edge chain through '" +
                    node(members.front()).name +
                    "' — cycles are not control flow here; use a loop region");
    return false;
  }
  if (heads.size() > 1) {
    diags.error(node(heads[1]).loc, "procedure '" + name_ + "': nodes '" + node(heads[0]).name +
                                        "' and '" + node(heads[1]).name +
                                        "' both start the region's edge chain");
    return false;
  }

  std::set<int> seen;
  int cur = heads[0];
  while (true) {
    ordered.push_back(cur);
    seen.insert(cur);
    if (node(cur).succs.empty()) break;
    int next = node(cur).succs[0];
    if (seen.count(next)) {
      diags.error(node(next).loc, "procedure '" + name_ + "': cyclic edge chain through '" +
                                      node(next).name +
                                      "' — cycles are not control flow here; use a loop region");
      return false;
    }
    cur = next;
  }
  if (seen.size() != members.size()) {
    for (int id : members) {
      if (seen.count(id)) continue;
      diags.error(node(id).loc, "procedure '" + name_ + "': cyclic edge chain through '" +
                                    node(id).name +
                                    "' — cycles are not control flow here; use a loop region");
      return false;
    }
  }
  return true;
}

bool ProcedureBuilder::emitRegion(int parent, bool inElse, std::vector<StmtPtr>& out,
                                  DiagnosticEngine& diags) {
  std::vector<int> members;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    Node& n = nodes_[k];
    if (n.parent != parent) continue;
    if (parent >= 0 && node(parent).kind == Node::Kind::Guard && n.inElse != inElse) continue;
    members.push_back(static_cast<int>(k));
  }
  std::vector<int> ordered;
  if (!orderRegion(members, ordered, diags)) return false;

  bool ok = true;
  for (int id : ordered) {
    Node& n = node(id);
    switch (n.kind) {
      case Node::Kind::Block:
        for (StmtPtr& s : n.stmts) out.push_back(std::move(s));
        break;
      case Node::Kind::Loop: {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Do;
        s->loc = n.loc;
        s->label = n.label;
        s->doVar = n.doVar;
        s->lo = std::move(n.lo);
        s->hi = std::move(n.hi);
        s->step = std::move(n.step);
        ok = emitRegion(id, false, s->body, diags) && ok;
        out.push_back(std::move(s));
        break;
      }
      case Node::Kind::Guard: {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::If;
        s->loc = n.loc;
        s->label = n.label;
        s->cond = std::move(n.cond);
        ok = emitRegion(id, false, s->thenBody, diags) && ok;
        ok = emitRegion(id, true, s->elseBody, diags) && ok;
        out.push_back(std::move(s));
        break;
      }
    }
  }
  return ok;
}

bool ProcedureBuilder::emit(Procedure& out, DiagnosticEngine& diags) {
  for (const Diagnostic& d : pending_) {
    if (d.kind == DiagKind::Error)
      diags.error(d.loc, "procedure '" + name_ + "': " + d.message);
    else
      diags.note(d.loc, d.message);
  }
  const std::size_t errorsBefore = diags.errorCount();

  for (int id : regionStack_) {
    const Node& n = node(id);
    diags.error(n.loc, "procedure '" + name_ + "': " +
                           (n.kind == Node::Kind::Loop ? std::string("loop '") : "guard '") +
                           n.name + "' was never closed (missing endLoop()/endGuard())");
  }

  std::set<std::string> blockNames;
  for (const Node& n : nodes_) {
    if (n.kind != Node::Kind::Block) continue;
    if (!blockNames.insert(n.name).second)
      diags.error(n.loc, "procedure '" + name_ + "': duplicate block name '" + n.name + "'");
  }

  std::set<std::string> declNames;
  for (const VarDecl& d : decls_)
    if (!declNames.insert(d.name).second)
      diags.error(d.loc, "procedure '" + name_ + "': duplicate declaration of '" + d.name + "'");
  for (const ParamConst& pc : consts_)
    if (declNames.count(pc.name))
      diags.error({}, "procedure '" + name_ + "': '" + pc.name +
                          "' declared both as a variable and a PARAMETER");
  if (isMain_ && !params_.empty())
    diags.error({}, "main program '" + name_ + "' cannot have formal parameters");
  for (const CommonBlock& blk : commons_)
    for (const std::string& v : blk.vars)
      if (!declNames.count(v))
        diags.error({}, "procedure '" + name_ + "': COMMON /" + blk.name + "/ lists undeclared '" +
                            v + "'");

  // Assemble the body even in the presence of symbol errors — the region
  // walk surfaces every structural problem in one build() call.
  std::vector<StmtPtr> body;
  if (regionStack_.empty()) emitRegion(-1, false, body, diags);

  for (const StmtPtr& s : body) collectDefinedScalars(*s);
  for (const StmtPtr& s : body) validateStmt(*s, diags);

  std::set<int> labels(stmtLabels_.begin(), stmtLabels_.end());
  for (const auto& [label, loc] : gotoTargets_)
    if (!labels.count(label))
      diags.error(loc, "procedure '" + name_ + "': GOTO references undefined label " +
                           std::to_string(label));

  out.name = name_;
  out.isMain = isMain_;
  out.loc = procLoc_;
  out.params = std::move(params_);
  out.decls = std::move(decls_);
  out.commons = std::move(commons_);
  out.paramConsts = std::move(consts_);
  out.body = std::move(body);
  return diags.errorCount() == errorsBefore && !diags.hasErrors();
}

// ------------------------------------------------------- ProgramBuilder

ProcedureBuilder& ProgramBuilder::procedure(std::string name) {
  for (ProcedureBuilder& pb : procs_)
    if (pb.name() == name) return pb;
  procs_.push_back(ProcedureBuilder(this, std::move(name), /*isMain=*/false));
  return procs_.back();
}

ProcedureBuilder& ProgramBuilder::mainProgram(std::string name) {
  for (ProcedureBuilder& pb : procs_) {
    if (pb.name() == name) {
      pb.isMain_ = true;
      return pb;
    }
  }
  procs_.push_back(ProcedureBuilder(this, std::move(name), /*isMain=*/true));
  return procs_.back();
}

BuildResult ProgramBuilder::build() {
  BuildResult result;
  if (built_) {
    result.diags.error({}, "ProgramBuilder::build() called twice; the builder is single-shot");
    return result;
  }
  built_ = true;
  if (procs_.empty()) {
    result.diags.error({}, "program has no procedures");
    return result;
  }

  Program program;
  program.procedures.reserve(procs_.size());
  for (ProcedureBuilder& pb : procs_) {
    Procedure proc;
    pb.emit(proc, result.diags);
    program.procedures.push_back(std::move(proc));
  }
  if (!result.diags.hasErrors()) result.program = std::move(program);
  return result;
}

}  // namespace panorama::builder
