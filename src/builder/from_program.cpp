// rebuild(): replays an existing pre-sema AST through a fresh ProgramBuilder.
// This is the parse → IR → rebuild round-trip behind `--via-builder`, the
// ingestion bench and the fuzz tests: the result must be structurally
// identical to the input (same `fingerprintProcedure` hash), which makes the
// replay a continuous proof that the fluent API spans everything the F77
// parser can produce.
#include "panorama/builder/builder.h"

namespace panorama::builder {
namespace {

Val wrapClone(const ExprPtr& e) { return Val::wrap(e ? e->clone() : nullptr); }

void replayBody(ProcedureBuilder& pb, const std::vector<StmtPtr>& body) {
  for (const StmtPtr& sp : body) {
    const Stmt& s = *sp;
    pb.at(static_cast<int>(s.loc.line), static_cast<int>(s.loc.column));
    if (s.label != 0) pb.labelNext(s.label);
    switch (s.kind) {
      case Stmt::Kind::Assign:
        if (s.lhs->kind == Expr::Kind::VarRef) {
          pb.assign(s.lhs->name, wrapClone(s.rhs));
        } else {
          std::vector<Val> subs;
          subs.reserve(s.lhs->args.size());
          for (const ExprPtr& a : s.lhs->args) subs.push_back(wrapClone(a));
          pb.store(s.lhs->name, std::move(subs), wrapClone(s.rhs));
        }
        break;
      case Stmt::Kind::If:
        pb.beginGuard(wrapClone(s.cond));
        replayBody(pb, s.thenBody);
        if (!s.elseBody.empty()) {
          pb.beginElse();
          replayBody(pb, s.elseBody);
        }
        pb.endGuard();
        break;
      case Stmt::Kind::Do:
        if (s.step)
          pb.beginLoop(s.doVar, wrapClone(s.lo), wrapClone(s.hi), wrapClone(s.step));
        else
          pb.beginLoop(s.doVar, wrapClone(s.lo), wrapClone(s.hi));
        replayBody(pb, s.body);
        pb.endLoop();
        break;
      case Stmt::Kind::Goto:
        pb.jump(s.gotoLabel);
        break;
      case Stmt::Kind::Continue:
        // The label (if any) was routed through labelNext() above, so
        // makeStmt() attaches it exactly like a parsed `N continue`.
        pb.cont(0);
        break;
      case Stmt::Kind::Call: {
        std::vector<Val> args;
        args.reserve(s.args.size());
        for (const ExprPtr& a : s.args) args.push_back(wrapClone(a));
        pb.call(s.callee, std::move(args));
        break;
      }
      case Stmt::Kind::Return:
        pb.ret();
        break;
      case Stmt::Kind::Stop:
        pb.stop();
        break;
    }
  }
}

VarDecl cloneDecl(const VarDecl& d) {
  VarDecl c;
  c.name = d.name;
  c.type = d.type;
  c.loc = d.loc;
  c.dims.reserve(d.dims.size());
  for (const VarDecl::DimBound& b : d.dims) {
    VarDecl::DimBound nb;
    if (b.lo) nb.lo = b.lo->clone();
    if (b.up) nb.up = b.up->clone();
    c.dims.push_back(std::move(nb));
  }
  return c;
}

}  // namespace

BuildResult rebuild(const Program& program) {
  ProgramBuilder b;
  for (const Procedure& p : program.procedures) {
    ProcedureBuilder& pb = p.isMain ? b.mainProgram(p.name) : b.procedure(p.name);
    pb.at(static_cast<int>(p.loc.line), static_cast<int>(p.loc.column));
    for (const std::string& formal : p.params) pb.param(formal);
    for (const VarDecl& d : p.decls) pb.declare(cloneDecl(d));
    for (const CommonBlock& blk : p.commons) pb.common(blk.name, blk.vars);
    for (const ParamConst& pc : p.paramConsts) pb.constant(pc.name, wrapClone(pc.value));
    replayBody(pb, p.body);
  }
  return b.build();
}

}  // namespace panorama::builder
