#include "panorama/support/memo_cache.h"

#include <cstdio>

#include "panorama/obs/metrics.h"

namespace panorama {

QueryCache& QueryCache::global() {
  static QueryCache cache;
  return cache;
}

QueryCache::Shard& QueryCache::shardFor(const Key& k) const {
  return shards_[KeyHasher{}(k) % kShards];
}

std::size_t QueryCache::shardIndexForTesting(Tag tag, const std::vector<std::uint64_t>& words) {
  Key key{static_cast<std::uint64_t>(tag), words};
  return KeyHasher{}(key) % kShards;
}

void QueryCache::refreshStale(Shard& shard, std::uint64_t epochNow, std::uint64_t retireNow) {
  if (shard.seenEpoch != epochNow || shard.seenRetire != retireNow) {
    // The global (epoch, retire) pair moved since this shard last looked:
    // every resident entry predates the move and is eviction-preferred.
    shard.staleCount = shard.map.size();
    shard.seenEpoch = epochNow;
    shard.seenRetire = retireNow;
  }
}

void QueryCache::configure(std::size_t capacity) {
  clear();
  capacity_.store(capacity, std::memory_order_release);
}

std::size_t QueryCache::capacity() const {
  return capacity_.load(std::memory_order_acquire);
}

std::optional<Truth> QueryCache::lookup(Tag tag, const std::vector<std::uint64_t>& words) {
  if (!enabled()) return std::nullopt;
  const std::uint64_t now = epoch();
  Key key{static_cast<std::uint64_t>(tag), words};
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto it = shard.map.find(key); it != shard.map.end() && it->second.epoch == now) {
    ++shard.hits;
    return it->second.verdict;
  }
  ++shard.misses;
  return std::nullopt;
}

void QueryCache::store(Tag tag, std::vector<std::uint64_t> words, Truth verdict) {
  const std::size_t cap = capacity();
  if (cap == 0) return;
  const std::size_t perShard = cap / kShards > 0 ? cap / kShards : 1;
  const std::uint64_t now = epoch();
  const std::uint64_t retireNow = retireGeneration();
  Key key{static_cast<std::uint64_t>(tag), std::move(words)};
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  refreshStale(shard, now, retireNow);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    // Current-epoch twin: a racing thread stored the same verdict. Stale
    // entry: refresh in place (the key already sits in the order deque).
    if (entryStale(it->second, now, retireNow) && shard.staleCount > 0) --shard.staleCount;
    it->second = Entry{verdict, now, retireNow};
    return;
  }
  while (shard.map.size() >= perShard && !shard.order.empty()) {
    // Victim selection: the oldest *stale* entry when one exists (an
    // epoch-stale entry can never hit again; a retired-unit entry is the
    // least likely to be asked again), plain FIFO among live entries
    // otherwise. The scan only runs while staleCount > 0 and stops at the
    // first stale entry, so live-only shards stay O(1) per eviction.
    std::size_t victimIdx = 0;
    if (shard.staleCount > 0) {
      for (std::size_t k = 0; k < shard.order.size(); ++k) {
        if (entryStale(shard.map.at(shard.order[k]), now, retireNow)) {
          victimIdx = k;
          break;
        }
      }
    }
    const bool wasStale = entryStale(shard.map.at(shard.order[victimIdx]), now, retireNow);
    shard.map.erase(shard.order[victimIdx]);
    shard.order.erase(shard.order.begin() + static_cast<std::ptrdiff_t>(victimIdx));
    ++shard.evictions;
    if (wasStale) {
      ++shard.evictedStale;
      if (shard.staleCount > 0) --shard.staleCount;
    } else {
      ++shard.evictedLive;
    }
  }
  shard.order.push_back(key);
  shard.map.emplace(std::move(key), Entry{verdict, now, retireNow});
}

QueryCache::Stats QueryCache::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.map.size();
    out.evictedStale += shard.evictedStale;
    out.evictedLive += shard.evictedLive;
  }
  return out;
}

void QueryCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.order.clear();
    shard.hits = shard.misses = shard.evictions = 0;
    shard.evictedStale = shard.evictedLive = 0;
    shard.staleCount = 0;
    shard.seenEpoch = epoch();
    shard.seenRetire = retireGeneration();
  }
}

std::string formatQueryCacheStats(const QueryCache::Stats& stats) {
  return obs::renderCacheCounters("query cache", stats.hits, stats.misses, stats.entries,
                                  stats.evictions, /*rateDecimals=*/1);
}

}  // namespace panorama
