#include "panorama/support/memo_cache.h"

#include <cstdio>

#include "panorama/obs/metrics.h"

namespace panorama {

QueryCache& QueryCache::global() {
  static QueryCache cache;
  return cache;
}

QueryCache::Shard& QueryCache::shardFor(const Key& k) const {
  return shards_[KeyHasher{}(k) % kShards];
}

void QueryCache::configure(std::size_t capacity) {
  clear();
  capacity_.store(capacity, std::memory_order_release);
}

std::size_t QueryCache::capacity() const {
  return capacity_.load(std::memory_order_acquire);
}

std::optional<Truth> QueryCache::lookup(Tag tag, const std::vector<std::uint64_t>& words) {
  if (!enabled()) return std::nullopt;
  const std::uint64_t now = epoch();
  Key key{static_cast<std::uint64_t>(tag), words};
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto it = shard.map.find(key); it != shard.map.end() && it->second.epoch == now) {
    ++shard.hits;
    return it->second.verdict;
  }
  ++shard.misses;
  return std::nullopt;
}

void QueryCache::store(Tag tag, std::vector<std::uint64_t> words, Truth verdict) {
  const std::size_t cap = capacity();
  if (cap == 0) return;
  const std::size_t perShard = cap / kShards > 0 ? cap / kShards : 1;
  const std::uint64_t now = epoch();
  Key key{static_cast<std::uint64_t>(tag), std::move(words)};
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    // Current-epoch twin: a racing thread stored the same verdict. Stale
    // entry: refresh in place (the key already sits in the FIFO deque).
    it->second = Entry{verdict, now};
    return;
  }
  while (shard.map.size() >= perShard && !shard.order.empty()) {
    shard.map.erase(shard.order.front());
    shard.order.pop_front();
    ++shard.evictions;
  }
  shard.order.push_back(key);
  shard.map.emplace(std::move(key), Entry{verdict, now});
}

QueryCache::Stats QueryCache::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.map.size();
  }
  return out;
}

void QueryCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.order.clear();
    shard.hits = shard.misses = shard.evictions = 0;
  }
}

std::string formatQueryCacheStats(const QueryCache::Stats& stats) {
  return obs::renderCacheCounters("query cache", stats.hits, stats.misses, stats.entries,
                                  stats.evictions, /*rateDecimals=*/1);
}

}  // namespace panorama
