#include "panorama/support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace panorama::support {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::makeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::makeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::makeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::Array;
  out.items_ = std::move(v);
  return out;
}

JsonValue JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> v) {
  JsonValue out;
  out.kind_ = Kind::Object;
  out.members_ = std::move(v);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool atEnd() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skipWs() {
    while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                        text[pos] == '\r'))
      ++pos;
  }

  bool fail(const std::string& why) {
    if (error.empty()) error = why + " at offset " + std::to_string(pos);
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool parseString(std::string& out) {
    if (atEnd() || peek() != '"') return fail("expected '\"'");
    ++pos;
    while (!atEnd()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (atEnd()) return fail("truncated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("invalid \\u escape");
            }
            // The producers in this repo only escape control characters;
            // encode the code point as UTF-8 without surrogate handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (atEnd()) return fail("unexpected end of input");
    char c = peek();
    if (c == '{') {
      ++pos;
      std::vector<std::pair<std::string, JsonValue>> members;
      skipWs();
      if (!atEnd() && peek() == '}') {
        ++pos;
        out = JsonValue::makeObject(std::move(members));
        return true;
      }
      while (true) {
        skipWs();
        std::string key;
        if (!parseString(key)) return false;
        skipWs();
        if (atEnd() || peek() != ':') return fail("expected ':'");
        ++pos;
        JsonValue value;
        if (!parseValue(value)) return false;
        members.emplace_back(std::move(key), std::move(value));
        skipWs();
        if (atEnd()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == '}') {
          ++pos;
          out = JsonValue::makeObject(std::move(members));
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      std::vector<JsonValue> items;
      skipWs();
      if (!atEnd() && peek() == ']') {
        ++pos;
        out = JsonValue::makeArray(std::move(items));
        return true;
      }
      while (true) {
        JsonValue value;
        if (!parseValue(value)) return false;
        items.push_back(std::move(value));
        skipWs();
        if (atEnd()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == ']') {
          ++pos;
          out = JsonValue::makeArray(std::move(items));
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parseString(s)) return false;
      out = JsonValue::makeString(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = JsonValue::makeBool(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = JsonValue::makeBool(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      out = JsonValue::makeNull();
      return true;
    }
    // Number.
    std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' || peek() == '+' || peek() == '-'))
      ++pos;
    if (pos == start) return fail("invalid value");
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("invalid number");
    out = JsonValue::makeNumber(v);
    return true;
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
  Parser p{text};
  JsonValue out;
  if (!p.parseValue(out)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skipWs();
  if (!p.atEnd()) {
    if (error) *error = "trailing content at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return out;
}

void appendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace panorama::support
