#include "panorama/support/thread_pool.h"

#include <chrono>

namespace panorama {

std::size_t ThreadPool::defaultConcurrency() {
  std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = defaultConcurrency();
  slots_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::takeTask(std::size_t self, Task& out) {
  const std::size_t n = slots_.size();
  // Own queue first (front: the order the batch scheduled them)...
  {
    Slot& own = *slots_[self];
    std::lock_guard<std::mutex> lock(own.m);
    if (!own.q.empty()) {
      out = std::move(own.q.front());
      own.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal from a peer's back.
  for (std::size_t d = 1; d < n; ++d) {
    Slot& victim = *slots_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.back());
      victim.q.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(Task& task) {
  task.fn();
  // Decrement under the batch mutex: the waiter re-acquires it once after
  // observing zero, so the batch state cannot be destroyed while any task
  // is still inside this critical section.
  std::lock_guard<std::mutex> lock(*task.doneMutex);
  if (task.remaining->fetch_sub(1, std::memory_order_acq_rel) == 1)
    task.done->notify_all();
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    Task task;
    if (takeTask(self, task)) {
      runTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wakeMutex_);
    wake_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void ThreadPool::runBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threadCount() == 1) {
    // Serial path: inline, in order, no synchronization.
    for (auto& fn : tasks) fn();
    return;
  }

  std::atomic<std::size_t> remaining{tasks.size()};
  std::condition_variable done;
  std::mutex doneMutex;

  // Round-robin the tasks across every slot (workers and callers alike).
  {
    const std::size_t n = slots_.size();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      Slot& slot = *slots_[i % n];
      std::lock_guard<std::mutex> lock(slot.m);
      slot.q.push_back(Task{std::move(tasks[i]), &remaining, &done, &doneMutex});
    }
    queued_.fetch_add(tasks.size(), std::memory_order_relaxed);
  }
  wake_.notify_all();

  // Help until this batch drains. Executing unrelated tasks here is fine —
  // it can only be another batch making progress through us.
  while (remaining.load(std::memory_order_acquire) > 0) {
    Task task;
    if (takeTask(0, task)) {
      runTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(doneMutex);
    done.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // Barrier: the final decrementer holds doneMutex while notifying; taking
  // it once here guarantees every runTask critical section has exited
  // before the batch locals are destroyed.
  { std::lock_guard<std::mutex> lock(doneMutex); }
}

}  // namespace panorama
