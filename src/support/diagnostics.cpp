#include "panorama/support/diagnostics.h"

#include <ostream>
#include <sstream>

namespace panorama {

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({DiagKind::Error, loc, std::move(message)});
  ++errorCount_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({DiagKind::Warning, loc, std::move(message)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({DiagKind::Note, loc, std::move(message)});
}

namespace {
const char* kindName(DiagKind k) {
  switch (k) {
    case DiagKind::Error: return "error";
    case DiagKind::Warning: return "warning";
    default: return "note";
  }
}
}  // namespace

void DiagnosticEngine::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    if (d.loc.isValid()) os << d.loc.line << ':' << d.loc.column << ": ";
    os << kindName(d.kind) << ": " << d.message << '\n';
  }
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace panorama
