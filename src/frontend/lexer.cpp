#include "panorama/frontend/lexer.h"

#include <cctype>

namespace panorama {

namespace {

bool isIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool isIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

class Lexer {
 public:
  Lexer(std::string_view src, DiagnosticEngine& diags, LexDialect dialect)
      : src_(src), diags_(diags), clike_(dialect == LexDialect::CLike) {}

  std::vector<Token> run() {
    if (clike_) return runCLike();
    while (!atEnd()) lexLine();
    push(TokKind::Eof);
    return std::move(tokens_);
  }

 private:
  bool atEnd() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    ++col_;
    return c;
  }
  SourceLoc here() const { return {line_, col_}; }

  void push(TokKind k, SourceLoc loc = {}) {
    Token t;
    t.kind = k;
    t.loc = loc.isValid() ? loc : here();
    tokens_.push_back(std::move(t));
  }

  void newline() {
    ++pos_;
    ++line_;
    col_ = 1;
  }

  void lexLine() {
    // Column-1 comment markers (classic fixed-form style).
    if (col_ == 1 && (peek() == 'C' || peek() == 'c' || peek() == '*')) {
      skipToEol();
      emitNewline();
      return;
    }
    while (!atEnd()) {
      char c = peek();
      if (c == '\n') {
        emitNewline();
        return;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
        continue;
      }
      if (c == '!') {
        skipToEol();
        emitNewline();
        return;
      }
      if (c == '&') {
        // Continuation: swallow to and including the newline.
        advance();
        while (!atEnd() && peek() != '\n') {
          if (peek() != ' ' && peek() != '\t' && peek() != '\r' && peek() != '!') {
            diags_.error(here(), "unexpected text after continuation '&'");
            skipToEol();
            break;
          }
          if (peek() == '!') {
            skipToEol();
            break;
          }
          advance();
        }
        if (!atEnd() && peek() == '\n') newline();
        continue;
      }
      lexToken();
    }
    if (atEnd()) emitNewlineIfNeeded();
  }

  std::vector<Token> runCLike() {
    // Free-form: newlines are ordinary whitespace (no Newline tokens),
    // statements end at ';', comments run from "//" to end of line.
    while (!atEnd()) {
      char c = peek();
      if (c == '\n') {
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skipToEol();
        continue;
      }
      lexToken();
    }
    push(TokKind::Eof);
    return std::move(tokens_);
  }

  void emitNewline() {
    newline();
    emitNewlineIfNeeded();
  }

  void emitNewlineIfNeeded() {
    if (!tokens_.empty() && tokens_.back().kind != TokKind::Newline) push(TokKind::Newline);
  }

  void skipToEol() {
    while (!atEnd() && peek() != '\n') advance();
    if (!atEnd()) return;  // newline handled by caller via emitNewline
  }

  void lexToken() {
    SourceLoc loc = here();
    char c = peek();
    if (isIdentStart(c)) {
      std::string word;
      while (!atEnd() && isIdentChar(peek())) word.push_back(lower(advance()));
      if (clike_ && (word == "true" || word == "false")) {
        push(word == "true" ? TokKind::TrueLit : TokKind::FalseLit, loc);
        return;
      }
      Token t;
      t.kind = TokKind::Ident;
      t.loc = loc;
      t.text = std::move(word);
      tokens_.push_back(std::move(t));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      lexNumber(loc);
      return;
    }
    if (c == '.' && !clike_) {
      lexDotWord(loc);
      return;
    }
    advance();
    if (clike_) {
      switch (c) {
        case '{': push(TokKind::LBrace, loc); return;
        case '}': push(TokKind::RBrace, loc); return;
        case '[': push(TokKind::LBracket, loc); return;
        case ']': push(TokKind::RBracket, loc); return;
        case ';': push(TokKind::Semicolon, loc); return;
        case '!':
          if (peek() == '=') {
            advance();
            push(TokKind::Ne, loc);
          } else {
            push(TokKind::Not, loc);
          }
          return;
        case '&':
          if (peek() == '&') {
            advance();
            push(TokKind::And, loc);
          } else {
            diags_.error(loc, "expected '&&'");
          }
          return;
        case '|':
          if (peek() == '|') {
            advance();
            push(TokKind::Or, loc);
          } else {
            diags_.error(loc, "expected '||'");
          }
          return;
        case '/': push(TokKind::Slash, loc); return;  // '/=' is Fortran-only
        default: break;
      }
    }
    switch (c) {
      case '+': push(TokKind::Plus, loc); return;
      case '-': push(TokKind::Minus, loc); return;
      case '*':
        if (peek() == '*') {
          advance();
          push(TokKind::Power, loc);
        } else {
          push(TokKind::Star, loc);
        }
        return;
      case '/':
        if (peek() == '=') {
          advance();
          push(TokKind::Ne, loc);
        } else {
          push(TokKind::Slash, loc);
        }
        return;
      case '(': push(TokKind::LParen, loc); return;
      case ')': push(TokKind::RParen, loc); return;
      case ',': push(TokKind::Comma, loc); return;
      case ':': push(TokKind::Colon, loc); return;
      case '=':
        if (peek() == '=') {
          advance();
          push(TokKind::EqEq, loc);
        } else {
          push(TokKind::Assign, loc);
        }
        return;
      case '<':
        if (peek() == '=') {
          advance();
          push(TokKind::Le, loc);
        } else {
          push(TokKind::Lt, loc);
        }
        return;
      case '>':
        if (peek() == '=') {
          advance();
          push(TokKind::Ge, loc);
        } else {
          push(TokKind::Gt, loc);
        }
        return;
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        return;
    }
  }

  void lexNumber(SourceLoc loc) {
    std::string digits;
    bool isReal = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) digits.push_back(advance());
    // A '.' begins a fraction only if NOT followed by a letter (else it is a
    // dotted operator like 1.EQ.J).
    if (peek() == '.' && !isIdentStart(peek(1)) && peek(1) != '.') {
      isReal = true;
      digits.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) digits.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E' || peek() == 'd' || peek() == 'D') {
      char next = peek(1);
      char next2 = peek(2);
      if (std::isdigit(static_cast<unsigned char>(next)) ||
          ((next == '+' || next == '-') && std::isdigit(static_cast<unsigned char>(next2)))) {
        isReal = true;
        advance();
        digits.push_back('e');
        if (peek() == '+' || peek() == '-') digits.push_back(advance());
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          digits.push_back(advance());
      }
    }
    Token t;
    t.loc = loc;
    if (isReal) {
      t.kind = TokKind::RealLit;
      t.realValue = std::stod(digits);
    } else {
      t.kind = TokKind::IntLit;
      t.intValue = std::stoll(digits);
    }
    tokens_.push_back(std::move(t));
  }

  void lexDotWord(SourceLoc loc) {
    // .LT. .LE. .GT. .GE. .EQ. .NE. .AND. .OR. .NOT. .TRUE. .FALSE.
    advance();  // consume '.'
    std::string word;
    while (!atEnd() && isIdentStart(peek())) word.push_back(lower(advance()));
    if (peek() != '.') {
      diags_.error(loc, "malformed dotted operator '." + word + "'");
      return;
    }
    advance();  // trailing '.'
    TokKind k;
    if (word == "lt") k = TokKind::Lt;
    else if (word == "le") k = TokKind::Le;
    else if (word == "gt") k = TokKind::Gt;
    else if (word == "ge") k = TokKind::Ge;
    else if (word == "eq") k = TokKind::EqEq;
    else if (word == "ne") k = TokKind::Ne;
    else if (word == "and") k = TokKind::And;
    else if (word == "or") k = TokKind::Or;
    else if (word == "not") k = TokKind::Not;
    else if (word == "true") k = TokKind::TrueLit;
    else if (word == "false") k = TokKind::FalseLit;
    else {
      diags_.error(loc, "unknown dotted operator '." + word + ".'");
      return;
    }
    push(k, loc);
  }

  std::string_view src_;
  DiagnosticEngine& diags_;
  bool clike_ = false;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags, LexDialect dialect) {
  return Lexer(source, diags, dialect).run();
}

const char* tokKindName(TokKind k) {
  switch (k) {
    case TokKind::Eof: return "end of input";
    case TokKind::Newline: return "end of statement";
    case TokKind::Ident: return "identifier";
    case TokKind::IntLit: return "integer literal";
    case TokKind::RealLit: return "real literal";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Power: return "'**'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::Comma: return "','";
    case TokKind::Colon: return "':'";
    case TokKind::Assign: return "'='";
    case TokKind::Lt: return "'<'";
    case TokKind::Le: return "'<='";
    case TokKind::Gt: return "'>'";
    case TokKind::Ge: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::Ne: return "'/='";
    case TokKind::And: return "'.and.'";
    case TokKind::Or: return "'.or.'";
    case TokKind::Not: return "'.not.'";
    case TokKind::TrueLit: return "'.true.'";
    case TokKind::FalseLit: return "'.false.'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Semicolon: return "';'";
  }
  return "?";
}

}  // namespace panorama
