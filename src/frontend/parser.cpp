#include "panorama/frontend/parser.h"

#include <algorithm>

namespace panorama {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  std::optional<Program> parseProgram() {
    Program program;
    skipNewlines();
    while (!at(TokKind::Eof)) {
      auto unit = parseUnit();
      if (!unit) return std::nullopt;
      program.procedures.push_back(std::move(*unit));
      skipNewlines();
    }
    if (diags_.hasErrors()) return std::nullopt;
    return program;
  }

  ExprPtr parseSingleExpression() {
    ExprPtr e = parseExpr();
    if (!at(TokKind::Newline) && !at(TokKind::Eof)) error("trailing tokens after expression");
    return e;
  }

 private:
  // ------------------------------------------------------------------ utils
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n = 1) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  bool at(TokKind k) const { return cur().kind == k; }
  bool atWord(std::string_view w) const { return cur().isWord(w); }
  Token take() { return tokens_[pos_++]; }
  bool accept(TokKind k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  bool acceptWord(std::string_view w) {
    if (!atWord(w)) return false;
    ++pos_;
    return true;
  }
  void expect(TokKind k, const char* what) {
    if (!accept(k)) error(std::string("expected ") + tokKindName(k) + " " + what);
  }
  std::string expectIdent(const char* what) {
    if (!at(TokKind::Ident)) {
      error(std::string("expected identifier ") + what);
      return "";
    }
    return take().text;
  }
  void error(std::string msg) {
    diags_.error(cur().loc, std::move(msg));
    recovering_ = true;
  }
  void skipNewlines() {
    while (accept(TokKind::Newline)) {
    }
  }
  void endStatement() {
    if (!at(TokKind::Eof)) expect(TokKind::Newline, "at end of statement");
    recovering_ = false;
  }
  void skipToNewline() {
    while (!at(TokKind::Newline) && !at(TokKind::Eof)) ++pos_;
    accept(TokKind::Newline);
    recovering_ = false;
  }

  // ------------------------------------------------------------- unit level
  std::optional<Procedure> parseUnit() {
    Procedure proc;
    proc.loc = cur().loc;
    if (acceptWord("program")) {
      proc.isMain = true;
      proc.name = expectIdent("after PROGRAM");
      endStatement();
    } else if (acceptWord("subroutine")) {
      proc.name = expectIdent("after SUBROUTINE");
      if (accept(TokKind::LParen)) {
        if (!at(TokKind::RParen)) {
          do {
            proc.params.push_back(expectIdent("in parameter list"));
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "after parameter list");
      }
      endStatement();
    } else {
      error("expected PROGRAM or SUBROUTINE");
      return std::nullopt;
    }

    skipNewlines();
    parseDeclarations(proc);
    parseStatements(proc.body, /*terminators=*/{"end"});
    if (!acceptWord("end")) {
      error("expected END at end of " + proc.name);
      return std::nullopt;
    }
    endStatement();
    if (diags_.hasErrors()) return std::nullopt;
    return proc;
  }

  void parseDeclarations(Procedure& proc) {
    for (;;) {
      skipNewlines();
      if (atWord("integer") || atWord("real") || atWord("logical")) {
        BaseType type = atWord("integer")  ? BaseType::Integer
                        : atWord("real")   ? BaseType::Real
                                           : BaseType::Logical;
        // A type keyword starts a declaration only when followed by a name
        // (guards against variables named like keywords; unlikely but cheap).
        if (ahead().kind != TokKind::Ident) break;
        take();
        parseDeclList(proc, type);
        endStatement();
        continue;
      }
      if (atWord("dimension")) {
        take();
        parseDeclList(proc, std::nullopt);
        endStatement();
        continue;
      }
      if (atWord("common")) {
        take();
        parseCommon(proc);
        endStatement();
        continue;
      }
      if (atWord("parameter")) {
        take();
        expect(TokKind::LParen, "after PARAMETER");
        do {
          ParamConst pc;
          pc.name = expectIdent("in PARAMETER list");
          expect(TokKind::Assign, "in PARAMETER definition");
          pc.value = parseExpr();
          proc.paramConsts.push_back(std::move(pc));
        } while (accept(TokKind::Comma));
        expect(TokKind::RParen, "after PARAMETER list");
        endStatement();
        continue;
      }
      break;
    }
  }

  /// Parses `name[(dims)][, ...]`. With a type, creates/updates typed decls;
  /// DIMENSION (nullopt type) only attaches bounds.
  void parseDeclList(Procedure& proc, std::optional<BaseType> type) {
    do {
      SourceLoc loc = cur().loc;
      std::string name = expectIdent("in declaration");
      std::vector<VarDecl::DimBound> dims;
      if (accept(TokKind::LParen)) {
        do {
          VarDecl::DimBound b;
          ExprPtr first = at(TokKind::Star) ? nullptr : parseExpr();
          if (!first) take();  // '*'
          if (accept(TokKind::Colon)) {
            b.lo = std::move(first);
            b.up = at(TokKind::Star) ? nullptr : parseExpr();
            if (!b.up && at(TokKind::Star)) take();
          } else {
            b.up = std::move(first);
          }
          dims.push_back(std::move(b));
        } while (accept(TokKind::Comma));
        expect(TokKind::RParen, "after array bounds");
      }
      // Merge with any existing decl for this name.
      VarDecl* existing = nullptr;
      for (VarDecl& d : proc.decls)
        if (d.name == name) existing = &d;
      if (!existing) {
        proc.decls.push_back(VarDecl{});
        existing = &proc.decls.back();
        existing->name = name;
        existing->loc = loc;
        // Implicit typing default when introduced via DIMENSION.
        existing->type = name.empty() || (name[0] >= 'i' && name[0] <= 'n')
                             ? BaseType::Integer
                             : BaseType::Real;
      }
      if (type) existing->type = *type;
      if (!dims.empty()) existing->dims = std::move(dims);
    } while (accept(TokKind::Comma));
  }

  void parseCommon(Procedure& proc) {
    CommonBlock block;
    if (accept(TokKind::Slash)) {
      block.name = expectIdent("as COMMON block name");
      expect(TokKind::Slash, "after COMMON block name");
    }
    do {
      std::string name = expectIdent("in COMMON list");
      block.vars.push_back(name);
      // Inline dimensioning inside COMMON: COMMON /b/ a(100)
      if (at(TokKind::LParen)) {
        --pos_;  // rewind to the name and reuse the decl-list machinery
        parseDeclListEntryDims(proc, name);
      }
    } while (accept(TokKind::Comma));
    proc.commons.push_back(std::move(block));
  }

  void parseDeclListEntryDims(Procedure& proc, const std::string& name) {
    ++pos_;  // past the name again
    std::vector<VarDecl::DimBound> dims;
    expect(TokKind::LParen, "in COMMON dimensioning");
    do {
      VarDecl::DimBound b;
      ExprPtr first = parseExpr();
      if (accept(TokKind::Colon)) {
        b.lo = std::move(first);
        b.up = parseExpr();
      } else {
        b.up = std::move(first);
      }
      dims.push_back(std::move(b));
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen, "after COMMON dimensioning");
    VarDecl* existing = nullptr;
    for (VarDecl& d : proc.decls)
      if (d.name == name) existing = &d;
    if (!existing) {
      proc.decls.push_back(VarDecl{});
      existing = &proc.decls.back();
      existing->name = name;
      existing->type = (name[0] >= 'i' && name[0] <= 'n') ? BaseType::Integer : BaseType::Real;
    }
    existing->dims = std::move(dims);
  }

  // -------------------------------------------------------- statement level
  /// Parses statements until one of `terminators` (a keyword at statement
  /// start) or an end label is reached; the terminator is left unconsumed.
  void parseStatements(std::vector<StmtPtr>& out, std::vector<std::string_view> terminators,
                       int endLabel = 0) {
    for (;;) {
      skipNewlines();
      if (at(TokKind::Eof)) return;
      int label = 0;
      if (at(TokKind::IntLit)) {
        label = static_cast<int>(cur().intValue);
        // Peek past the label to check for a terminator keyword.
      }
      std::size_t save = pos_;
      if (label != 0) take();
      bool isTerm = std::any_of(terminators.begin(), terminators.end(),
                                [&](std::string_view t) { return atWord(t); });
      // "elseif"/"else if"/"endif"/"end if"/"enddo"/"end do" aliasing.
      if (!isTerm && atWord("end") && !terminators.empty()) {
        for (std::string_view t : terminators) {
          if ((t == "enddo" && ahead().isWord("do")) || (t == "endif" && ahead().isWord("if")))
            isTerm = true;
        }
        if (std::find(terminators.begin(), terminators.end(), "end") != terminators.end())
          isTerm = true;
      }
      if (!isTerm && atWord("else") &&
          std::find(terminators.begin(), terminators.end(), "else") != terminators.end())
        isTerm = true;
      if (isTerm && label == 0) {
        pos_ = save;
        return;
      }
      pos_ = save;
      if (label != 0) take();

      StmtPtr stmt = parseStatement();
      if (recovering_) skipToNewline();
      if (stmt) {
        stmt->label = label;
        bool closes = endLabel != 0 && label == endLabel;
        out.push_back(std::move(stmt));
        if (closes) return;
      } else if (label != 0 && endLabel != 0 && label == endLabel) {
        return;
      }
    }
  }

  StmtPtr parseStatement() {
    SourceLoc loc = cur().loc;
    if (atWord("do") && !(ahead().kind == TokKind::Assign)) return parseDo();
    if (atWord("if") && ahead().kind == TokKind::LParen) return parseIf();
    if (atWord("goto") || (atWord("go") && ahead().isWord("to"))) return parseGoto();
    if (atWord("continue")) {
      take();
      endStatement();
      return makeStmt(Stmt::Kind::Continue, loc);
    }
    if (atWord("call") && ahead().kind == TokKind::Ident) return parseCall();
    if (atWord("return")) {
      take();
      endStatement();
      return makeStmt(Stmt::Kind::Return, loc);
    }
    if (atWord("stop")) {
      take();
      if (at(TokKind::IntLit)) take();
      endStatement();
      return makeStmt(Stmt::Kind::Stop, loc);
    }
    return parseAssignment();
  }

  StmtPtr makeStmt(Stmt::Kind k, SourceLoc loc) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->loc = loc;
    return s;
  }

  StmtPtr parseDo() {
    SourceLoc loc = cur().loc;
    take();  // DO
    int endLabel = 0;
    if (at(TokKind::IntLit)) endLabel = static_cast<int>(take().intValue);
    auto s = makeStmt(Stmt::Kind::Do, loc);
    s->doVar = expectIdent("as DO index");
    expect(TokKind::Assign, "in DO header");
    s->lo = parseExpr();
    expect(TokKind::Comma, "in DO header");
    s->hi = parseExpr();
    if (accept(TokKind::Comma)) s->step = parseExpr();
    endStatement();
    if (endLabel == 0) {
      parseStatements(s->body, {"enddo"});
      if (!acceptWord("enddo")) {
        if (acceptWord("end")) acceptWord("do");
        else error("expected ENDDO");
      }
      endStatement();
    } else {
      parseStatements(s->body, {}, endLabel);
    }
    return s;
  }

  StmtPtr parseIf() {
    SourceLoc loc = cur().loc;
    take();  // IF
    expect(TokKind::LParen, "after IF");
    auto s = makeStmt(Stmt::Kind::If, loc);
    s->cond = parseExpr();
    expect(TokKind::RParen, "after IF condition");
    if (acceptWord("then")) {
      endStatement();
      parseStatements(s->thenBody, {"else", "elseif", "endif"});
      for (;;) {
        if (acceptWord("elseif") || (atWord("else") && ahead().isWord("if"))) {
          if (!tokens_[pos_ - 1].isWord("elseif")) {
            take();  // else
            take();  // if
          }
          // ELSE IF (...) THEN ... : nest as a fresh If in the else branch.
          expect(TokKind::LParen, "after ELSE IF");
          auto nested = makeStmt(Stmt::Kind::If, cur().loc);
          nested->cond = parseExpr();
          expect(TokKind::RParen, "after ELSE IF condition");
          if (!acceptWord("then")) error("expected THEN after ELSE IF");
          endStatement();
          parseStatements(nested->thenBody, {"else", "elseif", "endif"});
          Stmt* nestedRaw = nested.get();
          s->elseBody.push_back(std::move(nested));
          // Continue collecting further ELSE/ELSEIF into the nested If.
          parseIfTail(*nestedRaw);
          break;
        }
        if (acceptWord("else")) {
          endStatement();
          parseStatements(s->elseBody, {"endif"});
        }
        if (acceptWord("endif")) {
          endStatement();
        } else if (acceptWord("end")) {
          acceptWord("if");
          endStatement();
        } else {
          error("expected ENDIF");
        }
        break;
      }
      return s;
    }
    // Logical IF: one simple statement on the same line.
    StmtPtr inner = parseStatement();
    if (inner) s->thenBody.push_back(std::move(inner));
    return s;
  }

  /// Collects the ELSE / ELSE IF / ENDIF chain belonging to `s` (which is a
  /// nested ELSE IF already holding its THEN body).
  void parseIfTail(Stmt& s) {
    for (;;) {
      if (acceptWord("elseif") || (atWord("else") && ahead().isWord("if"))) {
        if (!tokens_[pos_ - 1].isWord("elseif")) {
          take();
          take();
        }
        expect(TokKind::LParen, "after ELSE IF");
        auto nested = makeStmt(Stmt::Kind::If, cur().loc);
        nested->cond = parseExpr();
        expect(TokKind::RParen, "after ELSE IF condition");
        if (!acceptWord("then")) error("expected THEN after ELSE IF");
        endStatement();
        parseStatements(nested->thenBody, {"else", "elseif", "endif"});
        Stmt* nestedRaw = nested.get();
        s.elseBody.push_back(std::move(nested));
        parseIfTail(*nestedRaw);
        return;
      }
      if (acceptWord("else")) {
        endStatement();
        parseStatements(s.elseBody, {"endif"});
      }
      if (acceptWord("endif")) {
        endStatement();
      } else if (acceptWord("end")) {
        acceptWord("if");
        endStatement();
      } else {
        error("expected ENDIF");
      }
      return;
    }
  }

  StmtPtr parseGoto() {
    SourceLoc loc = cur().loc;
    take();  // goto | go
    if (tokens_[pos_ - 1].isWord("go")) take();  // to
    auto s = makeStmt(Stmt::Kind::Goto, loc);
    if (at(TokKind::IntLit)) {
      s->gotoLabel = static_cast<int>(take().intValue);
    } else {
      error("expected label after GOTO");
    }
    endStatement();
    return s;
  }

  StmtPtr parseCall() {
    SourceLoc loc = cur().loc;
    take();  // CALL
    auto s = makeStmt(Stmt::Kind::Call, loc);
    s->callee = expectIdent("after CALL");
    if (accept(TokKind::LParen)) {
      if (!at(TokKind::RParen)) {
        do {
          s->args.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after CALL arguments");
    }
    endStatement();
    return s;
  }

  StmtPtr parseAssignment() {
    SourceLoc loc = cur().loc;
    if (!at(TokKind::Ident)) {
      error("expected a statement");
      return nullptr;
    }
    ExprPtr lhs = parsePrimary();
    if (!lhs || (lhs->kind != Expr::Kind::VarRef && lhs->kind != Expr::Kind::ArrayRef)) {
      error("invalid assignment target");
      return nullptr;
    }
    auto s = makeStmt(Stmt::Kind::Assign, loc);
    expect(TokKind::Assign, "in assignment");
    s->lhs = std::move(lhs);
    s->rhs = parseExpr();
    endStatement();
    return s;
  }

  // ------------------------------------------------------- expression level
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr l = parseAnd();
    while (at(TokKind::Or)) {
      SourceLoc loc = take().loc;
      l = Expr::binary(BinOp::Or, std::move(l), parseAnd(), loc);
    }
    return l;
  }

  ExprPtr parseAnd() {
    ExprPtr l = parseNot();
    while (at(TokKind::And)) {
      SourceLoc loc = take().loc;
      l = Expr::binary(BinOp::And, std::move(l), parseNot(), loc);
    }
    return l;
  }

  ExprPtr parseNot() {
    if (at(TokKind::Not)) {
      SourceLoc loc = take().loc;
      return Expr::unary(UnOp::Not, parseNot(), loc);
    }
    return parseRelational();
  }

  ExprPtr parseRelational() {
    ExprPtr l = parseAdditive();
    BinOp op;
    switch (cur().kind) {
      case TokKind::Lt: op = BinOp::Lt; break;
      case TokKind::Le: op = BinOp::Le; break;
      case TokKind::Gt: op = BinOp::Gt; break;
      case TokKind::Ge: op = BinOp::Ge; break;
      case TokKind::EqEq: op = BinOp::Eq; break;
      case TokKind::Ne: op = BinOp::Ne; break;
      default: return l;
    }
    SourceLoc loc = take().loc;
    return Expr::binary(op, std::move(l), parseAdditive(), loc);
  }

  ExprPtr parseAdditive() {
    ExprPtr l = parseMultiplicative();
    for (;;) {
      if (at(TokKind::Plus)) {
        SourceLoc loc = take().loc;
        l = Expr::binary(BinOp::Add, std::move(l), parseMultiplicative(), loc);
      } else if (at(TokKind::Minus)) {
        SourceLoc loc = take().loc;
        l = Expr::binary(BinOp::Sub, std::move(l), parseMultiplicative(), loc);
      } else {
        return l;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr l = parseUnary();
    for (;;) {
      if (at(TokKind::Star)) {
        SourceLoc loc = take().loc;
        l = Expr::binary(BinOp::Mul, std::move(l), parseUnary(), loc);
      } else if (at(TokKind::Slash)) {
        SourceLoc loc = take().loc;
        l = Expr::binary(BinOp::Div, std::move(l), parseUnary(), loc);
      } else {
        return l;
      }
    }
  }

  ExprPtr parseUnary() {
    if (at(TokKind::Minus)) {
      SourceLoc loc = take().loc;
      return Expr::unary(UnOp::Neg, parseUnary(), loc);
    }
    accept(TokKind::Plus);
    return parsePower();
  }

  ExprPtr parsePower() {
    ExprPtr base = parsePrimary();
    if (at(TokKind::Power)) {
      SourceLoc loc = take().loc;
      // Right associative.
      return Expr::binary(BinOp::Pow, std::move(base), parseUnary(), loc);
    }
    return base;
  }

  ExprPtr parsePrimary() {
    SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::IntLit: return Expr::intLit(take().intValue, loc);
      case TokKind::RealLit: return Expr::realLit(take().realValue, loc);
      case TokKind::TrueLit: take(); return Expr::logicalLit(true, loc);
      case TokKind::FalseLit: take(); return Expr::logicalLit(false, loc);
      case TokKind::LParen: {
        take();
        ExprPtr e = parseExpr();
        expect(TokKind::RParen, "after parenthesized expression");
        return e;
      }
      case TokKind::Ident: {
        std::string name = take().text;
        if (accept(TokKind::LParen)) {
          std::vector<ExprPtr> args;
          if (!at(TokKind::RParen)) {
            do {
              args.push_back(parseExpr());
            } while (accept(TokKind::Comma));
          }
          expect(TokKind::RParen, "after subscript list");
          return Expr::arrayRef(std::move(name), std::move(args), loc);
        }
        return Expr::var(std::move(name), loc);
      }
      default:
        error(std::string("unexpected ") + tokKindName(cur().kind) + " in expression");
        take();
        return Expr::intLit(0, loc);
    }
  }

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  bool recovering_ = false;
};

}  // namespace

std::optional<Program> parseProgram(std::string_view source, DiagnosticEngine& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (diags.hasErrors()) return std::nullopt;
  return Parser(std::move(tokens), diags).parseProgram();
}

ExprPtr parseExpression(std::string_view source, DiagnosticEngine& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (diags.hasErrors()) return nullptr;
  return Parser(std::move(tokens), diags).parseSingleExpression();
}

}  // namespace panorama
