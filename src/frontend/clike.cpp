// Recursive-descent parser for the C-like DSL (see clike.h for the
// grammar). Reuses the shared tokenizer in its CLike dialect and emits the
// program exclusively through the panorama::builder fluent API — this file
// is the proof that a frontend needs nothing from the F77 parser or the AST
// constructors to reach the full analysis pipeline.
#include "panorama/frontend/clike.h"

#include <string>
#include <utility>
#include <vector>

#include "panorama/builder/builder.h"
#include "panorama/frontend/lexer.h"

namespace panorama {

namespace {

using builder::Val;

class CLikeParser {
 public:
  CLikeParser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  bool run(builder::ProgramBuilder& b) {
    while (!at(TokKind::Eof) && !fatal_) parseUnit(b);
    return !fatal_ && !diags_.hasErrors();
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& take() { return tokens_[pos_++]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool atWord(std::string_view w) const { return cur().isWord(w); }

  bool accept(TokKind k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }

  void expect(TokKind k, const char* context) {
    if (accept(k)) return;
    diags_.error(cur().loc, std::string("expected ") + tokKindName(k) + " " + context + ", got " +
                                tokKindName(cur().kind));
    fatal_ = true;
  }

  std::string expectIdent(const char* context) {
    if (at(TokKind::Ident)) return take().text;
    diags_.error(cur().loc,
                 std::string("expected identifier ") + context + ", got " + tokKindName(cur().kind));
    fatal_ = true;
    return {};
  }

  void syncAt(const Token& t, builder::ProcedureBuilder& pb) {
    pb.at(static_cast<int>(t.loc.line), static_cast<int>(t.loc.column));
  }

  // ------------------------------------------------------------ units

  void parseUnit(builder::ProgramBuilder& b) {
    const Token& kw = cur();
    bool isMain = kw.isWord("main");
    if (!isMain && !kw.isWord("proc")) {
      diags_.error(kw.loc, "expected 'main' or 'proc' at top level, got " +
                               (kw.kind == TokKind::Ident ? "'" + kw.text + "'"
                                                          : std::string(tokKindName(kw.kind))));
      fatal_ = true;
      return;
    }
    take();
    std::string name = expectIdent("as unit name");
    if (fatal_) return;
    builder::ProcedureBuilder& pb = isMain ? b.mainProgram(name) : b.procedure(name);
    syncAt(kw, pb);
    expect(TokKind::LParen, "after unit name");
    if (!at(TokKind::RParen)) {
      do {
        pb.param(expectIdent("as formal parameter"));
      } while (!fatal_ && accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after formal parameters");
    expect(TokKind::LBrace, "to open the unit body");
    while (!fatal_ && !at(TokKind::RBrace) && !at(TokKind::Eof)) parseItem(pb);
    expect(TokKind::RBrace, "to close the unit body");
  }

  void parseItem(builder::ProcedureBuilder& pb) {
    if (atWord("int") || atWord("real") || atWord("bool")) {
      parseDecl(pb);
    } else if (atWord("const")) {
      parseConst(pb);
    } else if (atWord("shared")) {
      parseShared(pb);
    } else {
      parseStmt(pb);
    }
  }

  // ----------------------------------------------------- declarations

  void parseDecl(builder::ProcedureBuilder& pb) {
    syncAt(cur(), pb);
    const std::string kw = take().text;
    BaseType type = kw == "int"    ? BaseType::Integer
                    : kw == "bool" ? BaseType::Logical
                                   : BaseType::Real;
    do {
      const Token& nameTok = cur();
      std::string name = expectIdent("in declaration");
      if (fatal_) return;
      syncAt(nameTok, pb);
      if (accept(TokKind::LBracket)) {
        std::vector<Val> bounds;
        do {
          bounds.push_back(parseExpr());
        } while (!fatal_ && accept(TokKind::Comma));
        expect(TokKind::RBracket, "after array bounds");
        pb.array(std::move(name), std::move(bounds), type);
      } else {
        pb.scalar(std::move(name), type);
      }
    } while (!fatal_ && accept(TokKind::Comma));
    expect(TokKind::Semicolon, "after declaration");
  }

  void parseConst(builder::ProcedureBuilder& pb) {
    syncAt(cur(), pb);
    take();  // 'const'
    std::string name = expectIdent("as constant name");
    expect(TokKind::Assign, "in constant definition");
    Val value = parseExpr();
    expect(TokKind::Semicolon, "after constant definition");
    if (!fatal_) pb.constant(std::move(name), std::move(value));
  }

  void parseShared(builder::ProcedureBuilder& pb) {
    syncAt(cur(), pb);
    take();  // 'shared'
    expect(TokKind::LParen, "after 'shared'");
    std::string blockName = expectIdent("as shared-block name");
    expect(TokKind::RParen, "after shared-block name");
    std::vector<std::string> vars;
    do {
      vars.push_back(expectIdent("in shared-block list"));
    } while (!fatal_ && accept(TokKind::Comma));
    expect(TokKind::Semicolon, "after shared-block list");
    if (!fatal_) pb.common(std::move(blockName), std::move(vars));
  }

  // ------------------------------------------------------- statements

  void parseStmt(builder::ProcedureBuilder& pb) {
    const Token& first = cur();
    syncAt(first, pb);
    if (atWord("for")) {
      parseFor(pb);
      return;
    }
    if (atWord("if")) {
      parseIf(pb);
      return;
    }
    if (atWord("return")) {
      take();
      expect(TokKind::Semicolon, "after 'return'");
      pb.ret();
      return;
    }
    if (atWord("stop")) {
      take();
      expect(TokKind::Semicolon, "after 'stop'");
      pb.stop();
      return;
    }
    if (!at(TokKind::Ident)) {
      diags_.error(first.loc, std::string("expected a statement, got ") + tokKindName(first.kind));
      fatal_ = true;
      return;
    }
    std::string name = take().text;
    if (at(TokKind::LParen)) {
      // Call statement: name(args);
      take();
      std::vector<Val> args;
      if (!at(TokKind::RParen)) {
        do {
          args.push_back(parseExpr());
        } while (!fatal_ && accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      expect(TokKind::Semicolon, "after call");
      if (!fatal_) pb.call(std::move(name), std::move(args));
      return;
    }
    if (accept(TokKind::LBracket)) {
      std::vector<Val> subs;
      do {
        subs.push_back(parseExpr());
      } while (!fatal_ && accept(TokKind::Comma));
      expect(TokKind::RBracket, "after subscripts");
      expect(TokKind::Assign, "in array store");
      Val value = parseExpr();
      expect(TokKind::Semicolon, "after assignment");
      if (!fatal_) pb.store(std::move(name), std::move(subs), std::move(value));
      return;
    }
    expect(TokKind::Assign, "in assignment");
    Val value = parseExpr();
    expect(TokKind::Semicolon, "after assignment");
    if (!fatal_) pb.assign(std::move(name), std::move(value));
  }

  void parseFor(builder::ProcedureBuilder& pb) {
    take();  // 'for'
    expect(TokKind::LParen, "after 'for'");
    std::string var = expectIdent("as loop variable");
    expect(TokKind::Assign, "in loop header");
    Val lo = parseExpr();
    if (!atWord("to")) {
      diags_.error(cur().loc, "expected 'to' in loop header");
      fatal_ = true;
      return;
    }
    take();
    Val hi = parseExpr();
    bool hasStep = false;
    Val step = Val(1);
    if (atWord("step")) {
      take();
      step = parseExpr();
      hasStep = true;
    }
    expect(TokKind::RParen, "after loop header");
    if (fatal_) return;
    if (hasStep)
      pb.beginLoop(std::move(var), std::move(lo), std::move(hi), std::move(step));
    else
      pb.beginLoop(std::move(var), std::move(lo), std::move(hi));
    parseBlock(pb);
    pb.endLoop();
  }

  void parseIf(builder::ProcedureBuilder& pb) {
    take();  // 'if'
    expect(TokKind::LParen, "after 'if'");
    Val cond = parseExpr();
    expect(TokKind::RParen, "after condition");
    if (fatal_) return;
    pb.beginGuard(std::move(cond));
    parseBlock(pb);
    if (atWord("else")) {
      take();
      pb.beginElse();
      if (atWord("if")) {
        // else-if chains nest, exactly like the F77 parser's ELSE IF.
        parseIf(pb);
      } else {
        parseBlock(pb);
      }
    }
    pb.endGuard();
  }

  void parseBlock(builder::ProcedureBuilder& pb) {
    expect(TokKind::LBrace, "to open a block");
    while (!fatal_ && !at(TokKind::RBrace) && !at(TokKind::Eof)) parseItem(pb);
    expect(TokKind::RBrace, "to close a block");
  }

  // ------------------------------------------------------ expressions
  // C precedence: || < && < ! < relational < additive < multiplicative
  // < unary minus < primary. No exponent operator; use pow(a, b).

  Val parseExpr() { return parseOr(); }

  Val parseOr() {
    Val l = parseAnd();
    while (!fatal_ && accept(TokKind::Or)) l = std::move(l) || parseAnd();
    return l;
  }

  Val parseAnd() {
    Val l = parseNot();
    while (!fatal_ && accept(TokKind::And)) l = std::move(l) && parseNot();
    return l;
  }

  Val parseNot() {
    if (accept(TokKind::Not)) return !parseNot();
    return parseRel();
  }

  Val parseRel() {
    Val l = parseAdd();
    if (fatal_) return l;
    switch (cur().kind) {
      case TokKind::Lt: take(); return std::move(l) < parseAdd();
      case TokKind::Le: take(); return std::move(l) <= parseAdd();
      case TokKind::Gt: take(); return std::move(l) > parseAdd();
      case TokKind::Ge: take(); return std::move(l) >= parseAdd();
      case TokKind::EqEq: take(); return std::move(l) == parseAdd();
      case TokKind::Ne: take(); return std::move(l) != parseAdd();
      default: return l;
    }
  }

  Val parseAdd() {
    Val l = parseMul();
    while (!fatal_) {
      if (accept(TokKind::Plus))
        l = std::move(l) + parseMul();
      else if (accept(TokKind::Minus))
        l = std::move(l) - parseMul();
      else
        break;
    }
    return l;
  }

  Val parseMul() {
    Val l = parseUnary();
    while (!fatal_) {
      if (accept(TokKind::Star))
        l = std::move(l) * parseUnary();
      else if (accept(TokKind::Slash))
        l = std::move(l) / parseUnary();
      else
        break;
    }
    return l;
  }

  Val parseUnary() {
    if (accept(TokKind::Minus)) return -parseUnary();
    if (accept(TokKind::Plus)) return parseUnary();
    return parsePrimary();
  }

  Val parsePrimary() {
    const Token& t = cur();
    switch (t.kind) {
      case TokKind::IntLit:
        take();
        return builder::cst(t.intValue);
      case TokKind::RealLit:
        take();
        return builder::rcst(t.realValue);
      case TokKind::TrueLit:
        take();
        return builder::lcst(true);
      case TokKind::FalseLit:
        take();
        return builder::lcst(false);
      case TokKind::LParen: {
        take();
        Val inner = parseExpr();
        expect(TokKind::RParen, "after parenthesized expression");
        return inner;
      }
      case TokKind::Ident: {
        std::string name = take().text;
        if (accept(TokKind::LBracket)) {
          std::vector<Val> subs;
          do {
            subs.push_back(parseExpr());
          } while (!fatal_ && accept(TokKind::Comma));
          expect(TokKind::RBracket, "after subscripts");
          return builder::elem(std::move(name), std::move(subs));
        }
        if (accept(TokKind::LParen)) {
          std::vector<Val> args;
          if (!at(TokKind::RParen)) {
            do {
              args.push_back(parseExpr());
            } while (!fatal_ && accept(TokKind::Comma));
          }
          expect(TokKind::RParen, "after intrinsic arguments");
          return builder::fn(std::move(name), std::move(args));
        }
        return builder::sym(std::move(name));
      }
      default:
        diags_.error(t.loc,
                     std::string("expected an expression, got ") + tokKindName(t.kind));
        fatal_ = true;
        return Val(0);
    }
  }

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  bool fatal_ = false;
};

}  // namespace

std::optional<Program> parseCLike(std::string_view source, DiagnosticEngine& diags) {
  std::vector<Token> tokens = lex(source, diags, LexDialect::CLike);
  if (diags.hasErrors()) return std::nullopt;

  builder::ProgramBuilder b;
  CLikeParser parser(std::move(tokens), diags);
  if (!parser.run(b)) return std::nullopt;

  builder::BuildResult result = b.build();
  for (const Diagnostic& d : result.diags.diagnostics()) {
    if (d.kind == DiagKind::Error)
      diags.error(d.loc, d.message);
    else if (d.kind == DiagKind::Warning)
      diags.warning(d.loc, d.message);
    else
      diags.note(d.loc, d.message);
  }
  if (!result.ok()) return std::nullopt;
  return std::move(result.program);
}

}  // namespace panorama
